"""Deployment population: OD pairs, session chains, and their timing.

The paper's evaluation observes a production proxy for six months; every
connection contributes a sample.  The reproduction's equivalent is a
:class:`Deployment`: a set of OD pairs, each with a chain of sessions at
lognormal inter-session gaps.  Every session

* is the *measurement* unit (FFCT/FFLR are recorded for all sessions,
  including first-time viewers that have no cookie yet),
* leaves behind the cookie the next session of the same OD pair echoes,
* takes the 0-RTT path with probability ≈ 0.9 (§VI: 0-RTT "accounts for
  ~90 %" of streams).

Gaps beyond Δ = 60 minutes make the previous cookie stale (corner
case 2); first sessions have none at all — both populations are what
separates full Wira from Wira(Hx) in Fig 11.

Two population flavours share the chain model:

* :class:`Deployment` — the figure-scale population (10^2–10^3 chains).
  OD pairs are drawn from one sequential :class:`NetworkModel` stream,
  so chains must be generated front-to-back; :meth:`Deployment.generate`
  is unchanged since PR 1 and :meth:`Deployment.iter_chains` streams the
  same chains without materializing the full list.
* :class:`FleetPopulation` — the campaign-scale population (10^5–10^6
  sessions).  Every chain derives from ``(seed, od_index)`` alone, so a
  fleet worker can produce exactly its shard's chains in O(shard) time
  and memory — no worker regenerates the whole deployment.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional

from repro.media.source import StreamProfile
from repro.quic.connection import HandshakeMode
from repro.simnet.path import NetworkConditions
from repro.simnet.schedule import PathSchedule
from repro.simnet.trace import ConditionTrace, TracePoint
from repro.workload.network import NetworkModel, OdPairModel
from repro.workload.streams import sample_stream_profile


@dataclass(frozen=True)
class PlannedSession:
    """Everything needed to run one session under any scheme.

    (Named ``SessionSpec`` before PR 5; that name now belongs to the
    scheme-level construction spec in :mod:`repro.cdn.session`.  A
    planned session is scheme-*agnostic* — the same plan replays under
    every comparison scheme, which is what makes the A/B pairing exact.)
    """

    od: OdPairModel
    stream_profile: StreamProfile
    conditions: NetworkConditions
    handshake_mode: HandshakeMode
    epoch: float  # wall-clock seconds at session start
    gap_minutes: float  # time since this OD pair's previous session
    session_index: int  # 0 = first ever session of the pair
    seed: int
    #: Mid-session path dynamics (``DeploymentConfig.drift``): ``None``
    #: on steady paths, a bandwidth-drop trace on drifting ones.
    schedule: Optional[PathSchedule] = None

    @property
    def is_first_session(self) -> bool:
        return self.session_index == 0


#: Deprecated alias — the population-level spec's pre-PR-5 name.
SessionSpec = PlannedSession


@dataclass
class DeploymentConfig:
    """Size and mix of a simulated deployment."""

    n_od_pairs: int = 150
    mean_extra_sessions: float = 4.0  # sessions per OD = 1 + Geometric
    max_sessions_per_od: int = 8
    p_zero_rtt: float = 0.9
    gap_minutes_median: float = 8.0
    gap_minutes_sigma: float = 1.3
    video_frames_per_session: int = 20
    seed: int = 0
    #: Probability that a session's path drifts mid-transfer (a sampled
    #: bandwidth collapse shortly after the handshake).  0 keeps the
    #: original steady-path population — and, because the drift draws
    #: are gated behind it, byte-identical chains.  Cookie-trusting
    #: initializers meet stale MaxBW values under drift; this is the
    #: regime the scheme-frontier campaign measures.
    drift: float = 0.0

    def __post_init__(self) -> None:
        if self.n_od_pairs < 1:
            raise ValueError("need at least one OD pair")
        if not 0.0 <= self.p_zero_rtt <= 1.0:
            raise ValueError("p_zero_rtt must be a probability")
        if not 0.0 <= self.drift <= 1.0:
            raise ValueError("drift must be a probability")


class _ChainSampler:
    """The chain model shared by both population flavours."""

    def __init__(self, config: DeploymentConfig) -> None:
        self.config = config

    def chain_for_od(self, od: OdPairModel, od_index: int) -> List[PlannedSession]:
        """One OD pair's time-ordered session chain."""
        rng = random.Random(f"chain:{self.config.seed}:{od_index}")
        profile = sample_stream_profile(
            rng,
            stream_seed=od_index * 31 + 7,
            viewer_bandwidth_bps=od.base_bandwidth_bps,
        )
        n_sessions = 1 + self._geometric(rng, self.config.mean_extra_sessions)
        n_sessions = min(n_sessions, self.config.max_sessions_per_od)

        sessions: List[PlannedSession] = []
        epoch = rng.uniform(0.0, 600.0)
        gap_minutes = 0.0
        for index in range(n_sessions):
            if index > 0:
                gap_minutes = rng.lognormvariate(
                    _ln(self.config.gap_minutes_median), self.config.gap_minutes_sigma
                )
                epoch += gap_minutes * 60.0
            conditions = od.conditions_at(rng, interval_minutes=max(gap_minutes, 5.0))
            mode = (
                HandshakeMode.ZERO_RTT
                if rng.random() < self.config.p_zero_rtt
                else HandshakeMode.ONE_RTT
            )
            seed = rng.getrandbits(48)
            # Drift draws sit strictly AFTER every steady-population
            # draw and behind the gate, so drift=0 deployments consume
            # the identical rng stream they always did.
            schedule = None
            if self.config.drift > 0.0:
                schedule = self._drift_schedule(rng, conditions)
            sessions.append(
                PlannedSession(
                    od=od,
                    stream_profile=profile,
                    conditions=conditions,
                    handshake_mode=mode,
                    epoch=epoch,
                    gap_minutes=gap_minutes,
                    session_index=index,
                    seed=seed,
                    schedule=schedule,
                )
            )
        return sessions

    def _drift_schedule(self, rng: random.Random, conditions: NetworkConditions) -> Optional[PathSchedule]:
        """Sampled mid-session bandwidth drop for drifting deployments.

        With probability ``drift`` the path's bandwidth collapses to a
        sampled fraction shortly after the handshake — the moment a
        cookie-trusting initializer has just committed to yesterday's
        MaxBW.  The onset lands inside the first-frame transfer window
        so FFCT, not steady-state throughput, feels the drift.
        """
        if rng.random() >= self.config.drift:
            return None
        factor = rng.uniform(0.15, 0.45)
        onset = rng.uniform(0.02, 0.08)
        return PathSchedule(
            trace=ConditionTrace(
                [
                    TracePoint(0.0, conditions),
                    TracePoint(onset, conditions.scaled(bandwidth_factor=factor)),
                ]
            )
        )

    @staticmethod
    def _geometric(rng: random.Random, mean: float) -> int:
        """Geometric (k >= 0) with the given mean."""
        if mean <= 0:
            return 0
        p = 1.0 / (1.0 + mean)
        count = 0
        while rng.random() > p and count < 50:
            count += 1
        return count


class Deployment:
    """Generates the session chains of one deployment (figure scale)."""

    def __init__(self, config: DeploymentConfig) -> None:
        self.config = config
        self._sampler = _ChainSampler(config)

    def iter_chains(self) -> Iterator[List[PlannedSession]]:
        """Stream the chains front-to-back without retaining them.

        Each call starts a fresh, independent pass: the sequential
        OD-pair draws restart from the deployment seed, so iterating
        twice yields identical chains.
        """
        network = NetworkModel(random.Random(f"network:{self.config.seed}"))
        for od_index in range(self.config.n_od_pairs):
            yield self._sampler.chain_for_od(network.sample_od_pair(), od_index)

    def generate(self) -> List[List[PlannedSession]]:
        """Session chains, one inner list per OD pair, time-ordered."""
        return list(self.iter_chains())

    def iter_chains_range(self, start: int, stop: int) -> Iterator[List[PlannedSession]]:
        """Chains for OD indices ``[start, stop)``, regenerated from seed.

        The OD-pair stream is one sequential rng draw per index, so a
        range worker advances the cheap OD sampling for ``0..start-1``
        and builds chains only inside its range.  This is what lets the
        replay engine ship ``(config, start, stop)`` tuples to pool
        workers instead of pickled chains: identical to slicing
        :meth:`generate`, at a fraction of the cost.
        """
        if not 0 <= start <= stop <= self.config.n_od_pairs:
            raise ValueError(
                f"invalid OD range [{start}, {stop}) for {self.config.n_od_pairs} OD pairs"
            )
        network = NetworkModel(random.Random(f"network:{self.config.seed}"))
        for od_index in range(stop):
            od = network.sample_od_pair()
            if od_index >= start:
                yield self._sampler.chain_for_od(od, od_index)

    def generate_range(self, start: int, stop: int) -> List[List[PlannedSession]]:
        """List form of :meth:`iter_chains_range`."""
        return list(self.iter_chains_range(start, stop))

    def sessions(self) -> List[PlannedSession]:
        """All sessions flattened (chains stay internally ordered)."""
        return [spec for chain in self.iter_chains() for spec in chain]


class FleetPopulation:
    """Index-addressable population for fleet-scale campaigns.

    Unlike :class:`Deployment`, whose OD pairs come off one sequential
    random stream, every fleet chain is a pure function of
    ``(config.seed, od_index)``: workers regenerate exactly the chains
    of their chunk, so per-worker cost is O(chunk), not O(deployment).
    The population model itself (user groups, dispersion, chain timing)
    is identical — only the seeding strategy differs, which is why this
    class produces a *different but statistically equivalent* population
    from a :class:`Deployment` with the same seed.
    """

    def __init__(self, config: DeploymentConfig) -> None:
        self.config = config
        self._sampler = _ChainSampler(config)

    def chain(self, od_index: int) -> List[PlannedSession]:
        """The ``od_index``-th chain, derived independently of all others."""
        if not 0 <= od_index < self.config.n_od_pairs:
            raise IndexError(
                f"od_index {od_index} out of range "
                f"[0, {self.config.n_od_pairs})"
            )
        network = NetworkModel(
            random.Random(f"fleet-od:{self.config.seed}:{od_index}")
        )
        od = replace(network.sample_od_pair(), od_id=od_index)
        return self._sampler.chain_for_od(od, od_index)

    def iter_chains(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[List[PlannedSession]]:
        """Stream chains ``[start, stop)`` (defaults: the whole fleet)."""
        if stop is None:
            stop = self.config.n_od_pairs
        for od_index in range(start, stop):
            yield self.chain(od_index)

    def iter_sessions(self) -> Iterator[PlannedSession]:
        """All sessions, streamed; memory stays O(one chain)."""
        for chain in self.iter_chains():
            yield from chain


def _ln(x: float) -> float:
    return math.log(x)

"""Stream population calibrated to the paper's Fig 1(a).

The measured inter-stream first-frame size distribution has mean
43.1 KB, with 30 % of streams under 30 KB and 20 % over 60 KB.  A
lognormal fit to those two quantiles gives

    ln FF ~ N(mu = 10.576, sigma = 0.507)

whose implied mean, exp(mu + sigma²/2) ≈ 44.6 KB, sits within 4 % of the
measured average — good enough that all three published statistics hold
simultaneously (verified in ``tests/workload/test_streams.py``).

Stream bitrate follows from the first-frame size through the GOP weight
model: with I:P:B weights 8:2.5:1 over a 2-second 25 fps GOP, a stream
whose I frames average ``I`` bytes carries roughly ``40·I`` bits/second,
putting the 43 KB median first frame at ≈ 1.6 Mbps — a typical 720p
live profile.
"""

from __future__ import annotations

import random

from repro.media.source import StreamProfile

FF_LOGNORMAL_MU = 10.576
FF_LOGNORMAL_SIGMA = 0.507

MIN_FF_BYTES = 6_000  # the paper's observed range: 6 KB ...
MAX_FF_BYTES = 250_000  # ... to 250 KB (§I)


def sample_ff_size(rng: random.Random) -> int:
    """One stream's nominal first-frame size, Fig 1(a)-calibrated."""
    ff = int(rng.lognormvariate(FF_LOGNORMAL_MU, FF_LOGNORMAL_SIGMA))
    return max(MIN_FF_BYTES, min(MAX_FF_BYTES, ff))


def sample_stream_profile(
    rng: random.Random,
    stream_seed: int,
    viewer_bandwidth_bps: float = float("inf"),
) -> StreamProfile:
    """A full stream profile with Fig 1-consistent FF behaviour.

    The nominal first frame is pinned via ``first_frame_target_bytes``;
    the complexity process then produces the intra-stream variation of
    Fig 1(b) around it.

    ``viewer_bandwidth_bps`` caps the rendition: viewers (or their ABR
    logic) pick a bitrate their access link can sustain, so first-frame
    size and path bandwidth are positively correlated in deployments —
    a 100 KB first frame implies a ≈4 Mbps rendition, which nobody
    watches over a 2 Mbps link.
    """
    ff_target = sample_ff_size(rng)
    if viewer_bandwidth_bps != float("inf"):
        max_bitrate = 0.7 * viewer_bandwidth_bps
        max_i = max_bitrate / 40.0
        ff_cap = max(MIN_FF_BYTES, int(max_i + 900))
        ff_target = min(ff_target, ff_cap)
    i_bytes = max(4_000, ff_target - 900)  # minus script + one audio frame
    video_bitrate = 40.0 * i_bytes  # weight-model relation, see module doc
    return StreamProfile(
        video_bitrate_bps=video_bitrate,
        fps=25,
        gop_seconds=2.0,
        first_frame_target_bytes=ff_target,
        complexity_rho=0.85,
        complexity_sigma=0.18,
        size_jitter=0.08,
        seed=stream_seed,
    )

"""Trace event schema: names, record shape, and validation.

Every trace record is one JSON object per line (JSONL) with exactly the
qlog-style triple at the top level::

    {"time": <seconds, float>, "name": "<category>:<event>", "data": {...}}

``time`` is *simulated* seconds (the :class:`~repro.simnet.engine.EventLoop`
clock), not wall-clock milliseconds — the simulator never consults the
host clock, and keeping the native unit means trace timestamps can be
diffed bit-exactly against cached replay results.  ``data`` always
carries the emitting connection id under ``"conn"`` (hex) so a merged
trace set can be re-grouped by connection.

The first record of every trace file is a ``trace:meta`` preamble
carrying :data:`SCHEMA_VERSION`; readers must reject files whose major
version they do not understand.  Versioning rule (see CONTRIBUTING.md):
adding a new event name or a new ``data`` key is backwards compatible
and does NOT bump the version; renaming/removing an event or changing
the meaning or unit of an existing key DOES.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

#: Bump on incompatible record-shape changes (see module docstring).
SCHEMA_VERSION = 1

#: Every event name the instrumentation may emit, by category.
#: ``transport:*``  — packet-level connection events
#: ``recovery:*``   — loss recovery and congestion-state updates
#: ``pacer:*``      — token-bucket pacing
#: ``bbr:*``        — BBR state machine
#: ``wira:*``       — the paper's mechanisms (parser, cookie, init)
#: ``session:*``    — client/player milestones (FFCT endpoints)
#: ``fault:*``      — injected faults and adverse-schedule transitions
#: ``fleet:*``      — campaign-engine milestones (chunk lifecycle,
#:                    telemetry snapshots, resume adoption)
#: ``serve:*``      — real-socket edge milestones (loadtest driver,
#:                    shard router); wall-clock territory, emitted
#:                    outside session scopes like ``fleet:*``
EVENT_NAMES = frozenset(
    {
        "trace:meta",
        "fleet:chunk_begin",
        "fleet:chunk_complete",
        "fleet:snapshot_written",
        "fleet:resume_adopted",
        "serve:session_begin",
        "serve:session_complete",
        "serve:retransmit",
        "serve:reshard",
        "transport:packet_sent",
        "transport:packet_received",
        "transport:packet_acked",
        "transport:packet_lost",
        "transport:packet_dropped",
        "transport:handshake_complete",
        "fault:injected",
        "fault:conditions_changed",
        "fault:link_down",
        "fault:link_up",
        "recovery:metrics_updated",
        "recovery:loss_timer_fired",
        "recovery:pto_fired",
        "pacer:tokens_depleted",
        "bbr:state_updated",
        "wira:request_received",
        "wira:parse_begin",
        "wira:parse_complete",
        "wira:cookie_hit",
        "wira:cookie_miss",
        "wira:cookie_received",
        "wira:cookie_evicted",
        "wira:init_cwnd",
        "wira:init_pacing",
        "session:request_sent",
        "session:first_byte",
        "session:video_frame",
        "session:first_frame",
        "session:done",
    }
)

#: One in-memory trace event: ``(time, name, conn, data)``.  The bus
#: stores this tuple shape on its hot path; JSONL serialisation folds
#: ``conn`` into ``data``.
TraceEvent = Tuple[float, str, str, Dict[str, object]]


def encode_record(time: float, name: str, conn: str, data: Dict[str, object]) -> str:
    """One canonical JSONL line.  ``sort_keys`` + fixed separators keep
    the byte stream deterministic across processes and platforms."""
    payload = dict(data)
    payload["conn"] = conn
    return json.dumps(
        {"time": time, "name": name, "data": payload},
        sort_keys=True,
        separators=(",", ":"),
    )


def meta_record(time: float, conn: str, label: str) -> str:
    """The ``trace:meta`` preamble line opening every trace file."""
    return encode_record(
        time, "trace:meta", conn, {"schema_version": SCHEMA_VERSION, "label": label}
    )


def decode_record(line: str) -> Dict[str, object]:
    """Parse one JSONL line; raises ``ValueError`` on malformed input."""
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError("record is not a JSON object")
    return record


def validate_record(record: object, known_names: bool = True) -> List[str]:
    """Schema-check one decoded record; returns human-readable defects."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    for key in ("time", "name", "data"):
        if key not in record:
            errors.append(f"missing required key {key!r}")
    extra = set(record) - {"time", "name", "data"}
    if extra:
        errors.append(f"unexpected top-level key(s): {', '.join(sorted(extra))}")
    time = record.get("time")
    if "time" in record and not isinstance(time, (int, float)):
        errors.append(f"time must be a number, got {type(time).__name__}")
    elif isinstance(time, (int, float)) and time < 0:
        errors.append(f"time must be non-negative, got {time}")
    name = record.get("name")
    if "name" in record:
        if not isinstance(name, str) or ":" not in name:
            errors.append(f"name must be a 'category:event' string, got {name!r}")
        elif known_names and name not in EVENT_NAMES:
            errors.append(f"unknown event name {name!r}")
    data = record.get("data")
    if "data" in record and not isinstance(data, dict):
        errors.append(f"data must be an object, got {type(data).__name__}")
    return errors


def validate_trace_lines(lines: Iterable[str], known_names: bool = True) -> List[str]:
    """Validate one trace file's lines.

    Checks every record's shape, the ``trace:meta`` preamble (presence,
    position, schema version), and that timestamps never decrease.
    Returns ``"line N: defect"`` strings; empty means the file is valid.
    """
    errors: List[str] = []
    previous_time: Optional[float] = None
    saw_meta = False
    lineno = 0
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            errors.append(f"line {lineno}: blank line")
            continue
        try:
            record = decode_record(line)
        except ValueError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        for defect in validate_record(record, known_names=known_names):
            errors.append(f"line {lineno}: {defect}")
        name = record.get("name")
        if lineno == 1:
            if name != "trace:meta":
                errors.append("line 1: first record must be trace:meta")
            else:
                saw_meta = True
                data = record.get("data")
                version = data.get("schema_version") if isinstance(data, dict) else None
                if version != SCHEMA_VERSION:
                    errors.append(
                        f"line 1: schema_version {version!r} not supported "
                        f"(expected {SCHEMA_VERSION})"
                    )
        elif name == "trace:meta":
            errors.append(f"line {lineno}: trace:meta only allowed as the first record")
        time = record.get("time")
        if isinstance(time, (int, float)):
            if previous_time is not None and time < previous_time:
                errors.append(
                    f"line {lineno}: timestamp {time} decreases "
                    f"(previous {previous_time})"
                )
            previous_time = float(time)
    if lineno == 0:
        errors.append("empty trace file")
    elif not saw_meta and not any("trace:meta" in e for e in errors):
        errors.append("line 1: first record must be trace:meta")
    return errors

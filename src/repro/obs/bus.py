"""The structured trace bus and its sinks.

One :class:`TraceBus` is installed globally through :mod:`repro.obs`
(mirroring the sanitizer's ``ACTIVE`` pattern): hook sites across
simnet/quic/core/cdn test a single module attribute and pay nothing when
tracing is off.  When on, :meth:`TraceBus.emit` appends a tuple to

* an **in-memory ring buffer** — always cheap, bounded, and dumpable on
  :class:`~repro.sanitize.errors.SanitizerError` for post-mortem
  context, and
* the **current session buffer** — scoped by :meth:`TraceBus.session`,
  flushed on exit as per-connection JSONL files when a ``trace_dir`` is
  configured.

File layout and determinism
---------------------------
A session labelled ``wira-c3-s1`` involving connections ``ab..`` and
``cd..`` produces ``<dir>/wira-c3-s1--ab...jsonl`` and
``<dir>/wira-c3-s1--cd...jsonl``.  Labels and connection ids are both
derived from seeded state, file contents use canonical JSON encoding,
and the replay engine routes every (scheme, chain) unit through a shard
subdirectory merged by :func:`merge_shard_traces` — so a parallel replay
produces a byte-identical trace set to a serial one.
"""

from __future__ import annotations

import shutil
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Deque, Dict, Iterator, List, Optional

from repro.obs.events import TraceEvent, decode_record, encode_record, meta_record

#: Default ring capacity: enough for the tail of any one session without
#: letting a long deployment replay grow memory unboundedly.
DEFAULT_RING_SIZE = 4096

#: Subdirectory the replay engine writes per-unit traces into before the
#: deterministic merge promotes them to the trace-dir root.
SHARDS_SUBDIR = "shards"


class TraceBus:
    """Typed event fan-in with a ring buffer and optional JSONL output.

    Parameters
    ----------
    trace_dir:
        Directory for per-connection JSONL trace files; ``None`` keeps
        tracing purely in memory (ring + session buffers).
    ring_size:
        Capacity of the post-mortem ring buffer.
    """

    __slots__ = ("ring", "counts", "trace_dir", "_session_label", "_session_events", "_shard")

    def __init__(
        self, trace_dir: Optional[Path] = None, ring_size: int = DEFAULT_RING_SIZE
    ) -> None:
        self.ring: Deque[TraceEvent] = deque(maxlen=ring_size)
        self.counts: Dict[str, int] = {}
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._session_label: Optional[str] = None
        self._session_events: Optional[List[TraceEvent]] = None
        self._shard: Optional[str] = None

    # ------------------------------------------------------------------
    # Hot path

    def emit(self, time: float, name: str, conn: str, data: Dict[str, object]) -> None:
        """Record one event.  Kept to appends and one dict update."""
        event = (time, name, conn, data)
        self.ring.append(event)
        self.counts[name] = self.counts.get(name, 0) + 1
        if self._session_events is not None:
            self._session_events.append(event)

    # ------------------------------------------------------------------
    # Scoping

    @contextmanager
    def session(self, label: str) -> Iterator[List[TraceEvent]]:
        """Collect events for one streaming session.

        Yields the (live) event list; on exit the events are flushed to
        per-connection JSONL files when a ``trace_dir`` is configured.
        Sessions do not nest — the previous buffer is restored on exit,
        so an accidental nested scope loses nothing but attributes inner
        events to the inner label.
        """
        previous_label, previous_events = self._session_label, self._session_events
        self._session_label = label
        self._session_events = []
        try:
            yield self._session_events
        finally:
            events = self._session_events
            self._session_label, self._session_events = previous_label, previous_events
            if self.trace_dir is not None and events:
                self._flush_session(label, events)

    @contextmanager
    def shard(self, name: str) -> Iterator[None]:
        """Route subsequent session flushes under ``shards/<name>/``.

        The replay engine scopes each (scheme, chain) work unit this
        way — on the serial path *and* inside pool workers — so the
        on-disk layout is identical regardless of parallelism, and
        :func:`merge_shard_traces` can recombine deterministically.
        """
        previous = self._shard
        self._shard = name
        try:
            yield
        finally:
            self._shard = previous

    # ------------------------------------------------------------------
    # Sinks

    def _output_dir(self) -> Path:
        assert self.trace_dir is not None
        if self._shard is not None:
            return self.trace_dir / SHARDS_SUBDIR / self._shard
        return self.trace_dir

    def _flush_session(self, label: str, events: List[TraceEvent]) -> None:
        """Write one session's events as per-connection JSONL files."""
        by_conn: Dict[str, List[TraceEvent]] = {}
        for event in events:
            by_conn.setdefault(event[2], []).append(event)
        out_dir = self._output_dir()
        out_dir.mkdir(parents=True, exist_ok=True)
        for conn in sorted(by_conn):
            conn_events = by_conn[conn]
            lines = [meta_record(conn_events[0][0], conn, label)]
            lines.extend(
                encode_record(time, name, event_conn, data)
                for time, name, event_conn, data in conn_events
            )
            path = out_dir / f"{label}--{conn}.jsonl"
            path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def ring_events(self) -> List[TraceEvent]:
        """Snapshot of the post-mortem ring buffer, oldest first."""
        return list(self.ring)


def merge_shard_traces(trace_dir: Path) -> int:
    """Promote ``<trace_dir>/shards/*/*.jsonl`` to the trace-dir root.

    Records are regrouped by trace file (whose name embeds the
    connection id) and ordered by ``(connection id, time)`` with a
    stable sort, so the merged set is byte-identical whether the shards
    were written serially or by a process pool.  Returns the number of
    merged trace files; the shards directory is removed afterwards.
    """
    shards_root = Path(trace_dir) / SHARDS_SUBDIR
    if not shards_root.is_dir():
        return 0
    grouped: Dict[str, List[Dict[str, object]]] = {}
    for path in sorted(shards_root.glob("*/*.jsonl")):
        for line in path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                grouped.setdefault(path.name, []).append(decode_record(line))
    for file_name in sorted(grouped):
        records = grouped[file_name]
        preamble = [r for r in records if r.get("name") == "trace:meta"][:1]
        body = [r for r in records if r.get("name") != "trace:meta"]
        body.sort(key=lambda r: float(r["time"]))  # type: ignore[arg-type]
        lines = [
            encode_record(
                float(r["time"]),  # type: ignore[arg-type]
                str(r["name"]),
                str(r.get("data", {}).get("conn", "")),  # type: ignore[union-attr]
                {
                    k: v
                    for k, v in sorted(r.get("data", {}).items())  # type: ignore[union-attr]
                    if k != "conn"
                },
            )
            for r in preamble + body
        ]
        out_path = Path(trace_dir) / file_name
        out_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    shutil.rmtree(shards_root)
    return len(grouped)

"""ASCII rendering of FFCT phase breakdowns.

Turns "Wira saves X ms" into "Wira saves X ms, of which Y ms from cwnd
init and Z ms from pacing init": per-scheme mean phase tables for the
Fig 11–15 replays, and a proportional timeline strip per scheme::

    Baseline |hhhh|oo|tttttttttttttttttt|ssss|  169.0ms
    Wira     |hhhh|oo|ttttttttt|                152.9ms

Phases: h=handshake, r=request, o=origin, t=transmit, s=stalls (see
:mod:`repro.obs.profiler`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.report import Table, format_ms
from repro.metrics.stats import mean
from repro.obs.profiler import PHASES, PhaseBreakdown

#: One glyph per phase, in chronological order.
PHASE_GLYPHS: Tuple[Tuple[str, str], ...] = (
    ("handshake", "h"),
    ("request", "r"),
    ("origin", "o"),
    ("transmit", "t"),
    ("stalls", "s"),
)


def mean_breakdown(
    breakdowns: Iterable[Optional[PhaseBreakdown]],
) -> Optional[PhaseBreakdown]:
    """Phase-wise mean over the sessions that produced a breakdown."""
    complete = [b for b in breakdowns if b is not None]
    if not complete:
        return None
    return PhaseBreakdown(
        **{name: mean([b.phase(name) for b in complete]) for name in PHASES}
    )


def phase_table(
    by_scheme: Dict[str, Optional[PhaseBreakdown]],
    title: str = "FFCT phase breakdown (mean per session)",
    baseline: Optional[str] = None,
) -> Table:
    """Per-scheme mean phase table, with per-phase savings vs a baseline.

    ``by_scheme`` maps a display name to a mean breakdown (``None`` rows
    render as dashes).  When ``baseline`` names a key with a breakdown,
    a delta row per scheme attributes the total saving to phases.
    """
    table = Table(title, ["scheme", *PHASES, "total"])
    base = by_scheme.get(baseline) if baseline is not None else None
    for scheme_name, breakdown in by_scheme.items():
        if breakdown is None:
            table.add_row(scheme_name, *(["-"] * (len(PHASES) + 1)))
            continue
        table.add_row(
            scheme_name,
            *(format_ms(breakdown.phase(name)) for name in PHASES),
            format_ms(breakdown.total),
        )
        if base is not None and scheme_name != baseline:
            deltas = [breakdown.phase(name) - base.phase(name) for name in PHASES]
            table.add_row(
                f"  vs {baseline}",
                *(f"{d * 1000:+.1f}ms" for d in deltas),
                f"{(breakdown.total - base.total) * 1000:+.1f}ms",
            )
    return table


def render_timeline(
    by_scheme: Dict[str, Optional[PhaseBreakdown]], width: int = 64
) -> str:
    """Proportional ASCII strip per scheme, common time scale."""
    complete = {k: v for k, v in by_scheme.items() if v is not None}
    if not complete:
        return "(no phase breakdowns — run with WIRA_TRACE=1)"
    scale_max = max(b.total for b in complete.values())
    if scale_max <= 0:
        return "(all breakdowns empty)"
    label_width = max(len(k) for k in by_scheme)
    lines: List[str] = []
    for scheme_name, breakdown in by_scheme.items():
        if breakdown is None:
            lines.append(f"{scheme_name.ljust(label_width)} (no breakdown)")
            continue
        strip = "".join(
            glyph * max(1 if breakdown.phase(name) > 0 else 0,
                        round(breakdown.phase(name) / scale_max * width))
            for name, glyph in PHASE_GLYPHS
        )
        lines.append(
            f"{scheme_name.ljust(label_width)} |{strip}|  {format_ms(breakdown.total)}"
        )
    legend = "  ".join(f"{glyph}={name}" for name, glyph in PHASE_GLYPHS)
    lines.append(f"{' ' * label_width} [{legend}]")
    return "\n".join(lines)


def render_quantile_strips(
    by_scheme: Dict[str, Optional[Tuple[float, ...]]],
    labels: Sequence[str] = ("p50", "p90", "p99"),
    width: int = 40,
) -> str:
    """Per-scheme quantile strips on a shared time scale.

    ``by_scheme`` maps a display name to quantile values in seconds
    (ascending, one per label; ``None`` rows render as a placeholder)::

        baseline |----5----------9---------------+|  p50 152.0ms  p99 301.2ms
        wira     |--5------9----------+           |  p50 121.4ms  p99 240.0ms

    Digits mark the p50/p90 positions (their leading digit), ``+`` the
    tail quantile — a live-dashboard sibling of :func:`render_timeline`.
    """
    complete = {k: v for k, v in by_scheme.items() if v}
    if not complete:
        return "(no completed sessions yet)"
    scale_max = max(max(v) for v in complete.values())
    if scale_max <= 0:
        return "(all quantiles zero)"
    label_width = max(len(k) for k in by_scheme)
    glyphs = [label[1] for label in labels[:-1]] + ["+"]
    lines: List[str] = []
    for scheme_name, values in by_scheme.items():
        if not values:
            lines.append(f"{scheme_name.ljust(label_width)} (no sessions yet)")
            continue
        strip = ["-"] * width
        for value, glyph in zip(values, glyphs):
            position = min(width - 1, max(0, round(value / scale_max * (width - 1))))
            strip[position] = glyph
        annotation = "  ".join(
            f"{label} {format_ms(value)}"
            for label, value in zip((labels[0], labels[-1]), (values[0], values[-1]))
        )
        lines.append(
            f"{scheme_name.ljust(label_width)} |{''.join(strip)}|  {annotation}"
        )
    legend = "  ".join(f"{glyph}={label}" for label, glyph in zip(labels, glyphs))
    lines.append(f"{' ' * label_width} [{legend}]")
    return "\n".join(lines)


def deployment_phase_table(
    records: Dict[object, Sequence[object]],
    title: str = "FFCT phase breakdown (mean per session)",
) -> Optional[Table]:
    """Phase table straight off ``DeploymentRecords``.

    Reads ``outcome.result.phase_breakdown`` per scheme — populated when
    sessions ran under an active trace bus (``WIRA_TRACE=1``); returns
    ``None`` when no session carries a breakdown, so figure benchmarks
    can print it opportunistically.
    """
    by_scheme: Dict[str, Optional[PhaseBreakdown]] = {}
    baseline_name: Optional[str] = None
    for scheme, outcomes in records.items():
        display = getattr(scheme, "display_name", str(scheme))
        breakdowns = [
            getattr(outcome.result, "phase_breakdown", None) for outcome in outcomes
        ]
        by_scheme[display] = mean_breakdown(breakdowns)
        if getattr(scheme, "value", None) == "baseline":
            baseline_name = display
    if all(v is None for v in by_scheme.values()):
        return None
    return phase_table(by_scheme, title=title, baseline=baseline_name)

"""Opt-in structured trace bus (``WIRA_TRACE=1``).

``repro.obs`` instruments the transport, the paper's mechanisms and the
client player with typed events, so a replay can answer *where* the
first-frame milliseconds went — not just how many there were.  Enable it
for any test or experiment run::

    WIRA_TRACE=1 WIRA_TRACE_DIR=traces/ python -m repro.experiments.fig12

which writes one qlog-style JSONL file per (session, connection) under
``WIRA_TRACE_DIR`` (memory-only tracing when unset), inspectable with
the stdlib-only ``tools/wira_trace`` CLI (``validate`` / ``summarize`` /
``diff``).

Design constraints (mirroring :mod:`repro.sanitize`):

* **~0 % overhead when disabled** — hook sites test one module global
  (``obs.ACTIVE is not None``); the EventLoop hot loop carries no hooks
  at all.  Guarded by ``benchmarks/test_bench_speed.py``.
* events are typed: every name lives in
  :data:`repro.obs.events.EVENT_NAMES` and every file opens with a
  versioned ``trace:meta`` record, validated by
  :func:`repro.obs.events.validate_trace_lines`.
* deterministic output: canonical JSON, seeded ids, and shard-merged
  files so parallel and serial replays produce byte-identical traces.

Programmatic use::

    from repro import obs

    with obs.tracing(trace_dir=tmp_path) as bus:
        result = session.run()
    assert bus.counts["session:first_frame"] == 1
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.obs.bus import DEFAULT_RING_SIZE, SHARDS_SUBDIR, TraceBus, merge_shard_traces
from repro.obs.events import (
    EVENT_NAMES,
    SCHEMA_VERSION,
    TraceEvent,
    decode_record,
    encode_record,
    validate_record,
    validate_trace_lines,
)
from repro.obs.profiler import (
    PHASES,
    PhaseBreakdown,
    profile_events,
    profile_records,
)

__all__ = [
    "ACTIVE",
    "DEFAULT_RING_SIZE",
    "EVENT_NAMES",
    "PHASES",
    "PhaseBreakdown",
    "SCHEMA_VERSION",
    "SHARDS_SUBDIR",
    "TraceBus",
    "TraceEvent",
    "decode_record",
    "disable",
    "enable",
    "enabled",
    "encode_record",
    "env_requested",
    "env_trace_dir",
    "merge_shard_traces",
    "profile_events",
    "profile_records",
    "tracing",
    "validate_record",
    "validate_trace_lines",
]

#: The installed trace bus, or ``None`` when tracing is off.  Hook sites
#: read this module attribute directly (``obs.ACTIVE is not None``), so
#: the disabled path costs one attribute check and a branch.
ACTIVE: Optional[TraceBus] = None


def env_requested() -> bool:
    """True when ``WIRA_TRACE`` asks for tracing.

    Delegates to :mod:`repro.runtime.settings`, the single parse point
    for every ``WIRA_*`` knob.
    """
    from repro.runtime import settings

    return settings.current().trace


def env_trace_dir() -> Optional[Path]:
    """Trace output directory from ``WIRA_TRACE_DIR``, if set."""
    from repro.runtime import settings

    return settings.current().trace_dir


def enable(
    bus: Optional[TraceBus] = None,
    trace_dir: Optional[Union[str, Path]] = None,
) -> TraceBus:
    """Install (or replace) the global trace bus and return it.

    ``trace_dir`` is only consulted when constructing a fresh bus; pass
    a pre-built ``bus`` to keep full control.
    """
    global ACTIVE
    if bus is None:
        directory = Path(trace_dir) if trace_dir is not None else env_trace_dir()
        bus = TraceBus(trace_dir=directory)
    ACTIVE = bus
    return ACTIVE


def disable() -> None:
    """Remove the global trace bus; hook sites revert to zero-cost."""
    global ACTIVE
    ACTIVE = None


def enabled() -> bool:
    return ACTIVE is not None


@contextmanager
def tracing(
    bus: Optional[TraceBus] = None,
    trace_dir: Optional[Union[str, Path]] = None,
) -> Iterator[TraceBus]:
    """Scoped enable/restore, for tests and ad-hoc profiling."""
    global ACTIVE
    previous = ACTIVE
    installed = enable(bus, trace_dir=trace_dir)
    try:
        yield installed
    finally:
        ACTIVE = previous


if env_requested():  # pragma: no cover - exercised by the trace-smoke CI job
    enable()

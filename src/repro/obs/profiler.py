"""FFCT phase profiler: decompose first-frame delay into paper phases.

The paper's headline metric — first-frame completion time — is measured
end-to-end on the client.  This module splits it into the phases the
paper's mechanisms act on, using the trace-bus events of one session:

``handshake``
    Request sent → server handshake complete.  Includes the uplink
    propagation and, on the 1-RTT path, the REJ round trip the server
    uses to measure an accurate init RTT (§VI).
``request``
    Server handshake complete → play request parsed on the server.
    ~0 for 0-RTT sessions, whose request rides with the CHLO.
``origin``
    Request parsed → first stream-data packet leaves the server.
    Origin frame availability plus Frame Perception parsing.
``transmit``
    First data packet out → Θ_VF-th video frame complete on the client,
    *minus* retransmit stalls.  This is the phase Wira's ``init_cwnd``
    and ``init_pacing`` overrides compress.
``stalls``
    Within the transmit window, time between a loss declaration (or
    PTO) on the server and its next transmission — the retransmission
    stalls Fig 14's FFLR correlates with.

``handshake + request + origin + transmit + stalls == FFCT`` by
construction; :func:`profile_events` returns ``None`` when a session
did not complete (no first frame) or the trace is missing milestones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.events import TraceEvent

#: Phase names in presentation (and chronological) order.
PHASES: Tuple[str, ...] = ("handshake", "request", "origin", "transmit", "stalls")


@dataclass(frozen=True)
class PhaseBreakdown:
    """One session's FFCT split into the paper's phases (seconds)."""

    handshake: float
    request: float
    origin: float
    transmit: float
    stalls: float

    @property
    def total(self) -> float:
        """Sums back to the session's FFCT."""
        return self.handshake + self.request + self.origin + self.transmit + self.stalls

    def phase(self, name: str) -> float:
        if name not in PHASES:
            raise KeyError(f"unknown phase {name!r}")
        return float(getattr(self, name))

    def as_dict(self) -> Dict[str, float]:
        return {name: self.phase(name) for name in PHASES}


def profile_events(events: Sequence[TraceEvent]) -> Optional[PhaseBreakdown]:
    """Compute a :class:`PhaseBreakdown` from one session's trace events.

    ``events`` is the in-memory tuple stream a
    :meth:`~repro.obs.bus.TraceBus.session` scope collected (time-ordered).
    Returns ``None`` when the milestones needed to anchor the phases are
    absent — e.g. the session timed out before the first frame.
    """
    t_request: Optional[float] = None
    t_first_frame: Optional[float] = None
    t_server_handshake: Optional[float] = None
    t_request_received: Optional[float] = None
    server_conn: Optional[str] = None

    for time, name, conn, data in events:
        if name == "session:request_sent" and t_request is None:
            t_request = time
        elif name == "wira:request_received" and t_request_received is None:
            t_request_received = time
            server_conn = conn
        elif name == "session:first_frame" and t_first_frame is None:
            t_first_frame = time

    if t_request is None or t_first_frame is None or server_conn is None:
        return None
    assert t_request_received is not None

    t_first_send: Optional[float] = None
    for time, name, conn, data in events:
        if conn != server_conn:
            continue
        if name == "transport:handshake_complete" and t_server_handshake is None:
            t_server_handshake = time
        elif (
            name == "transport:packet_sent"
            and t_first_send is None
            and data.get("stream_data")
        ):
            t_first_send = time
    if t_server_handshake is None or t_first_send is None:
        return None

    stalls = _stall_time(events, server_conn, t_first_send, t_first_frame)
    handshake = max(0.0, t_server_handshake - t_request)
    request = max(0.0, t_request_received - t_server_handshake)
    origin = max(0.0, t_first_send - t_request_received)
    transmit = max(0.0, t_first_frame - t_first_send - stalls)
    return PhaseBreakdown(handshake, request, origin, transmit, stalls)


def _stall_time(
    events: Sequence[TraceEvent],
    server_conn: str,
    window_start: float,
    window_end: float,
) -> float:
    """Retransmit-stall seconds inside the first-frame transmit window.

    A stall opens when the server declares loss (packet threshold, time
    threshold or PTO) and closes at its next transmission; overlapping
    stall intervals are merged before summing so double-declared losses
    are not double-counted.
    """
    intervals: List[Tuple[float, float]] = []
    open_at: Optional[float] = None
    for time, name, conn, _data in events:
        if conn != server_conn:
            continue
        if time > window_end:
            break
        if name in ("transport:packet_lost", "recovery:pto_fired"):
            if time >= window_start and open_at is None:
                open_at = time
        elif name == "transport:packet_sent" and open_at is not None:
            intervals.append((open_at, min(time, window_end)))
            open_at = None
    if open_at is not None:
        intervals.append((open_at, window_end))

    total = 0.0
    current_start: Optional[float] = None
    current_end = 0.0
    for start, end in sorted(intervals):
        if current_start is None or start > current_end:
            if current_start is not None:
                total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_start is not None:
        total += current_end - current_start
    return total


def profile_records(records: Iterable[Dict[str, object]]) -> Optional[PhaseBreakdown]:
    """:func:`profile_events` over decoded JSONL records.

    Accepts the merged record stream of one session (any number of
    connections, ``trace:meta`` preambles included) and normalises it to
    the in-memory tuple shape.  Records are re-sorted by time so
    concatenating per-connection files in any order is fine.
    """
    events: List[TraceEvent] = []
    for record in records:
        name = record.get("name")
        if not isinstance(name, str) or name == "trace:meta":
            continue
        time = record.get("time")
        data = record.get("data")
        if not isinstance(time, (int, float)) or not isinstance(data, dict):
            continue
        conn = str(data.get("conn", ""))
        events.append((float(time), name, conn, data))
    events.sort(key=lambda e: e[0])
    return profile_events(events)

"""wira-repro: reproduction of Wira (Wu et al., ICDCS 2024).

Wira reduces the first-frame delay of live streaming by initialising
each connection's congestion window from the parsed first-frame size and
its pacing rate from the OD pair's historical QoS, synchronised through
a stateless transport cookie.

Public API tour:

* ``repro.core`` — the mechanism: :class:`~repro.core.FrameParser`
  (Algorithm 1), the transport-cookie codecs and
  :func:`~repro.core.compute_initial_params` (Table I);
* ``repro.cdn`` — run sessions:
  :class:`~repro.cdn.session.StreamingSession`;
* ``repro.quic`` / ``repro.simnet`` / ``repro.media`` — the substrates;
* ``repro.workload`` / ``repro.experiments`` — the paper's evaluation.

See README.md for a quickstart and DESIGN.md for the full inventory.
"""

__version__ = "1.0.0"

from repro.core import (
    FrameParser,
    HxQos,
    InitialParams,
    Scheme,
    WiraConfig,
    compute_initial_params,
)

__all__ = [
    "FrameParser",
    "HxQos",
    "InitialParams",
    "Scheme",
    "WiraConfig",
    "compute_initial_params",
    "__version__",
]

"""Paper-style ASCII reporting.

Every benchmark prints the rows/series of its table or figure through
these helpers, so EXPERIMENTS.md's paper-vs-measured comparisons come
straight from benchmark output.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_ms(seconds: Optional[float]) -> str:
    """Render a duration in the paper's milliseconds."""
    if seconds is None:
        return "-"
    return f"{seconds * 1000:.1f}ms"


def format_pct(fraction: Optional[float], signed: bool = False) -> str:
    """Render a fraction as a percentage."""
    if fraction is None:
        return "-"
    sign = "+" if signed and fraction > 0 else ""
    return f"{sign}{fraction * 100:.1f}%"


class Table:
    """Minimal fixed-width table printer."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - deliberate, mirrors logging
        print()
        print(self.render())

"""Statistics the paper reports: percentiles, CDFs and the CV of Eq. 1.

The coefficient of variation follows the paper's formula (1) exactly:

    CV = (1 / (N · v_avg)) · sqrt( Σ (v_i − v_avg)² )

Note this is the *population-style* dispersion the paper uses — the
square root of the mean squared deviation scaled by ``1/(N·v_avg)`` is
equivalent to ``std_pop / (v_avg · sqrt(N))``; we implement the formula
literally so our Fig 3/Fig 4 reproductions mean the same thing the
paper's numbers do... with one caveat: read the docstring of
:func:`coefficient_of_variation`.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import List, Optional, Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (q in [0, 100]) with linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Dispersion of a QoS metric across connections (paper Eq. 1).

    The paper's formula as printed divides by ``N·v_avg`` outside the
    square root, which would shrink with sample count; the quoted
    numbers (e.g. "average CV 36.4 %" for UG MinRTT) are only consistent
    with the *standard* CV — ``std / mean`` — so that is what we compute,
    treating the printed ``1/N`` placement as a typo for the usual
    ``sqrt(1/N · Σ(…)²)/v_avg``.
    """
    if len(values) < 2:
        return 0.0
    avg = mean(values)
    if avg == 0:
        raise ValueError("CV undefined for zero mean")
    variance = sum((v - avg) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / abs(avg)


class Cdf:
    """Empirical CDF over a sample, as plotted throughout the paper."""

    def __init__(self, values: Sequence[float]) -> None:
        if not values:
            raise ValueError("CDF of empty sample")
        self._sorted: List[float] = sorted(values)

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def min(self) -> float:
        return self._sorted[0]

    @property
    def max(self) -> float:
        return self._sorted[-1]

    def at(self, x: float) -> float:
        """P(X <= x)."""
        return bisect_right(self._sorted, x) / len(self._sorted)

    def quantile(self, q: float) -> float:
        """Inverse CDF, q in [0, 1]."""
        return percentile(self._sorted, q * 100.0)

    def fraction_above(self, x: float) -> float:
        """P(X > x)."""
        return 1.0 - self.at(x)

    def series(self, points: int = 50) -> List[tuple]:
        """(value, cumulative probability) pairs for plotting/printing."""
        out = []
        for i in range(points + 1):
            q = i / points
            out.append((self.quantile(q), q))
        return out

"""Sample collection across sessions and schemes."""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional

from repro.metrics.stats import Cdf, mean, percentile


class MetricSeries:
    """A named series of float samples with the paper's summaries."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[float] = []

    def add(self, value: Optional[float]) -> None:
        """Record a sample; ``None`` values are skipped (incomplete)."""
        if value is not None:
            self.samples.append(float(value))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def avg(self) -> float:
        return mean(self.samples)

    def p(self, q: float) -> float:
        return percentile(self.samples, q)

    def cdf(self) -> Cdf:
        return Cdf(self.samples)

    def improvement_over(
        self, other: "MetricSeries", q: Optional[float] = None
    ) -> Optional[float]:
        """Optimisation ratio vs. a baseline series (positive = better).

        ``q=None`` compares averages; otherwise the q-th percentiles.
        Matches the paper's "optimization ratio": (base − ours) / base.
        Returns ``None`` — rendered as ``-`` by ``format_pct`` — when the
        ratio is undefined: either series empty, or the baseline zero.
        A silent ``0.0`` here used to make an incomparable pair look like
        "no improvement".
        """
        if not self.samples or not other.samples:
            return None
        ours = self.avg if q is None else self.p(q)
        base = other.avg if q is None else other.p(q)
        if base == 0:
            return None
        return (base - ours) / base


class SchemeCollector:
    """Samples bucketed by (scheme, metric) with optional sub-buckets."""

    def __init__(self) -> None:
        self._series: Dict[tuple, MetricSeries] = {}

    def series(self, scheme: str, metric: str, bucket: str = "") -> MetricSeries:
        key = (scheme, metric, bucket)
        if key not in self._series:
            self._series[key] = MetricSeries(f"{scheme}/{metric}" + (f"/{bucket}" if bucket else ""))
        return self._series[key]

    def add(self, scheme: str, metric: str, value: Optional[float], bucket: str = "") -> None:
        self.series(scheme, metric, bucket).add(value)

    def schemes(self) -> List[str]:
        return sorted({scheme for scheme, _, _ in self._series})

    def buckets(self, metric: str) -> List[str]:
        return sorted({b for _, m, b in self._series if m == metric and b})

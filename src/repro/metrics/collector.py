"""Sample collection across sessions and schemes."""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.metrics.sketch import QuantileSketch, SketchCdf, StatAccumulator
from repro.metrics.stats import Cdf, mean, percentile


class MetricSeries:
    """A named series of float samples with the paper's summaries.

    Two storage backends share one query API:

    * **samples** (default) — every value is retained; percentiles and
      CDFs are exact.  Right for figure-scale runs (10^2–10^4 samples).
    * **sketch** — pass ``sketch=QuantileSketch(...)`` (or use
      :meth:`sketched`) and values fold into fixed-size mergeable state:
      exact count/mean via :class:`StatAccumulator`, percentiles/CDF via
      the sketch within its documented relative-error bound.  Right for
      fleet-scale campaigns where retaining samples is the memory wall.

    ``improvement_over`` works identically on either backend (it only
    consumes averages and percentiles).
    """

    def __init__(self, name: str, sketch: Optional[QuantileSketch] = None) -> None:
        self.name = name
        self._sketch: Optional[QuantileSketch] = sketch
        #: Retained samples — ``None`` under the sketch backend, where
        #: retention is exactly what we are avoiding.
        self.samples: Optional[List[float]] = None if sketch is not None else []
        self._stats: Optional[StatAccumulator] = (
            StatAccumulator() if sketch is not None else None
        )

    @classmethod
    def sketched(cls, name: str, alpha: Optional[float] = None) -> "MetricSeries":
        """A series on the bounded-memory sketch backend."""
        sketch = QuantileSketch() if alpha is None else QuantileSketch(alpha)
        return cls(name, sketch=sketch)

    @property
    def uses_sketch(self) -> bool:
        return self._sketch is not None

    def add(self, value: Optional[float]) -> None:
        """Record a sample; ``None`` values are skipped (incomplete)."""
        if value is None:
            return
        if self._sketch is not None:
            assert self._stats is not None
            self._sketch.add(float(value))
            self._stats.add(float(value))
        else:
            assert self.samples is not None
            self.samples.append(float(value))

    def __len__(self) -> int:
        if self._sketch is not None:
            return self._sketch.count
        assert self.samples is not None
        return len(self.samples)

    @property
    def avg(self) -> float:
        if self._stats is not None:
            value = self._stats.mean
            if value is None:
                raise ValueError("mean of empty sequence")
            return value
        assert self.samples is not None
        return mean(self.samples)

    def p(self, q: float) -> float:
        if self._sketch is not None:
            return self._sketch.percentile(q)
        assert self.samples is not None
        return percentile(self.samples, q)

    def cdf(self) -> Union[Cdf, SketchCdf]:
        if self._sketch is not None:
            return self._sketch.cdf()
        assert self.samples is not None
        return Cdf(self.samples)

    def improvement_over(
        self, other: "MetricSeries", q: Optional[float] = None
    ) -> Optional[float]:
        """Optimisation ratio vs. a baseline series (positive = better).

        ``q=None`` compares averages; otherwise the q-th percentiles.
        Matches the paper's "optimization ratio": (base − ours) / base.
        Returns ``None`` — rendered as ``-`` by ``format_pct`` — when the
        ratio is undefined: either series empty, or the baseline zero.
        A silent ``0.0`` here used to make an incomparable pair look like
        "no improvement".
        """
        if len(self) == 0 or len(other) == 0:
            return None
        ours = self.avg if q is None else self.p(q)
        base = other.avg if q is None else other.p(q)
        if base == 0:
            return None
        return (base - ours) / base


class SchemeCollector:
    """Samples bucketed by (scheme, metric) with optional sub-buckets."""

    def __init__(self) -> None:
        self._series: Dict[tuple, MetricSeries] = {}

    def series(self, scheme: str, metric: str, bucket: str = "") -> MetricSeries:
        key = (scheme, metric, bucket)
        if key not in self._series:
            self._series[key] = MetricSeries(f"{scheme}/{metric}" + (f"/{bucket}" if bucket else ""))
        return self._series[key]

    def add(self, scheme: str, metric: str, value: Optional[float], bucket: str = "") -> None:
        self.series(scheme, metric, bucket).add(value)

    def schemes(self) -> List[str]:
        return sorted({scheme for scheme, _, _ in self._series})

    def display_names(self) -> Dict[str, str]:
        """Human-facing label per collected scheme value.

        Labels come from the scheme registry (the one source of truth —
        figure, fleet and report layers used to each carry their own
        table); values the registry does not know — custom plugins
        collected before registration, say — fall back to themselves.
        """
        from repro.core.schemes import display_name

        names = {}
        for scheme in self.schemes():
            try:
                names[scheme] = display_name(scheme)
            except ValueError:
                names[scheme] = scheme
        return names

    def buckets(self, metric: str) -> List[str]:
        return sorted({b for _, m, b in self._series if m == metric and b})

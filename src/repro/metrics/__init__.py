"""Measurement and reporting utilities for the evaluation."""

from repro.metrics.stats import (
    Cdf,
    coefficient_of_variation,
    mean,
    percentile,
)
from repro.metrics.collector import MetricSeries, SchemeCollector
from repro.metrics.report import Table, format_ms, format_pct

__all__ = [
    "Cdf",
    "MetricSeries",
    "SchemeCollector",
    "Table",
    "coefficient_of_variation",
    "format_ms",
    "format_pct",
    "mean",
    "percentile",
]

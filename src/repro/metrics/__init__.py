"""Measurement and reporting utilities for the evaluation."""

from repro.metrics.stats import (
    Cdf,
    coefficient_of_variation,
    mean,
    percentile,
)
from repro.metrics.collector import MetricSeries, SchemeCollector
from repro.metrics.report import Table, format_ms, format_pct
from repro.metrics.sketch import (
    DEFAULT_ALPHA,
    ExactSum,
    QuantileSketch,
    SketchCdf,
    StatAccumulator,
)

__all__ = [
    "Cdf",
    "DEFAULT_ALPHA",
    "ExactSum",
    "MetricSeries",
    "QuantileSketch",
    "SchemeCollector",
    "SketchCdf",
    "StatAccumulator",
    "Table",
    "coefficient_of_variation",
    "format_ms",
    "format_pct",
    "mean",
    "percentile",
]

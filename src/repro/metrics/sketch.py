"""Mergeable streaming aggregates: exact moments + bounded-error quantiles.

Fleet-scale campaigns (:mod:`repro.fleet`) fold millions of per-session
samples into fixed-size state instead of retaining them.  Three types
cooperate:

:class:`ExactSum`
    Order-invariant exact float summation (Shewchuk's non-overlapping
    partials, the algorithm behind :func:`math.fsum`).  Adding a value
    or merging another sum is *exact* in real arithmetic, so the rounded
    result is bit-identical no matter how samples were sharded — the
    property the fleet engine's serial == sharded guarantee rests on.

:class:`StatAccumulator`
    Count / mean / min / max built on :class:`ExactSum`.

:class:`QuantileSketch`
    A logarithmic-bucket quantile sketch (DDSketch-style, per Masson et
    al., "DDSketch: a fast and fully-mergeable quantile sketch with
    relative-error guarantees", VLDB 2019).  Samples land in geometric
    buckets ``γ^(i-1) < x <= γ^i`` with ``γ = (1+α)/(1−α)``; bucket
    counts are integers, so merging is plain addition — exactly
    associative, commutative, and shard-order invariant.

    **Error bound** (tested in ``tests/metrics/test_sketch.py``): for a
    quantile ``q``, :meth:`QuantileSketch.quantile` returns a value
    within relative error ``α`` of the exact *nearest-rank* percentile
    of the folded samples: ``|est − exact| <= α · exact``.  The P²
    algorithm the classic streaming literature reaches for was rejected
    here because its estimates depend on arrival order, which would
    break the byte-identical sharding contract.

All three serialize to plain JSON (``to_json``/``from_json``) so fleet
checkpoints survive interpreter restarts, and all three merge in O(state)
independent of sample count.

Samples must be non-negative and finite — every Wira metric folded at
fleet scale (FFCT seconds, loss rates, counts) is.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_ALPHA",
    "ExactSum",
    "QuantileSketch",
    "SketchCdf",
    "StatAccumulator",
]

#: Default relative-error bound for quantile estimates: 1 %.  At α=0.01
#: a sketch spanning 1 µs .. 1 h needs ~1100 buckets — a few tens of KB,
#: constant in the number of sessions folded.
DEFAULT_ALPHA = 0.01


class ExactSum:
    """Exact, order-invariant float accumulation as a dyadic rational.

    Every IEEE-754 double is exactly ``n / 2**s`` for integers ``n``,
    ``s`` — so any *sum* of doubles is too, and Python's unbounded ints
    can carry it exactly.  The state is kept canonical (odd numerator or
    zero), which makes the serialized form — not just the rounded value
    — independent of fold and merge order: the property the fleet
    engine's serial == sharded byte-identity rests on.  ``value`` is the
    correctly-rounded sum, identical to ``math.fsum`` of the inputs.
    """

    __slots__ = ("_num", "_shift")

    def __init__(self) -> None:
        self._num: int = 0  # value == _num / 2**_shift
        self._shift: int = 0

    def _fold(self, num: int, shift: int) -> None:
        if shift > self._shift:
            self._num = (self._num << (shift - self._shift)) + num
            self._shift = shift
        else:
            self._num += num << (self._shift - shift)
        # Canonicalize: zero is (0, 0); otherwise strip the common
        # power-of-two factor so the numerator is odd.
        if self._num == 0:
            self._shift = 0
            return
        trailing = (self._num & -self._num).bit_length() - 1
        if trailing > self._shift:
            trailing = self._shift
        if trailing:
            self._num >>= trailing
            self._shift -= trailing

    def add(self, x: float) -> None:
        """Fold one (finite) value in, exactly."""
        numerator, denominator = float(x).as_integer_ratio()
        self._fold(numerator, denominator.bit_length() - 1)

    def merge(self, other: "ExactSum") -> None:
        """Fold another exact sum in; exact, so order never matters."""
        self._fold(other._num, other._shift)

    @property
    def value(self) -> float:
        """The correctly-rounded sum of everything folded so far."""
        return self._num / (1 << self._shift)

    def to_json(self) -> List[int]:
        return [self._num, self._shift]

    @classmethod
    def from_json(cls, payload: Iterable[int]) -> "ExactSum":
        numerator, shift = payload
        out = cls()
        out._fold(int(numerator), int(shift))
        return out


class StatAccumulator:
    """Exact count / mean / min / max over a stream, mergeable."""

    __slots__ = ("count", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self.count: int = 0
        self._sum = ExactSum()
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def add(self, value: Optional[float]) -> None:
        """Fold a sample; ``None`` is skipped (incomplete sessions)."""
        if value is None:
            return
        value = float(value)
        self.count += 1
        self._sum.add(value)
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def merge(self, other: "StatAccumulator") -> None:
        self.count += other.count
        self._sum.merge(other._sum)
        for bound in (other._min, other._max):
            if bound is not None:
                if self._min is None or bound < self._min:
                    self._min = bound
                if self._max is None or bound > self._max:
                    self._max = bound

    @property
    def total(self) -> float:
        return self._sum.value

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self._sum.value / self.count

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    def to_json(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self._sum.to_json(),
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "StatAccumulator":
        out = cls()
        out.count = int(payload["count"])  # type: ignore[arg-type]
        out._sum = ExactSum.from_json(payload["sum"])  # type: ignore[arg-type]
        out._min = None if payload["min"] is None else float(payload["min"])  # type: ignore[arg-type]
        out._max = None if payload["max"] is None else float(payload["max"])  # type: ignore[arg-type]
        return out


class QuantileSketch:
    """Fixed-accuracy mergeable quantile sketch over non-negative samples.

    Bucket ``i`` covers ``(γ^(i-1), γ^i]`` with ``γ = (1+α)/(1−α)``; a
    sample maps to ``ceil(log_γ x)`` and is estimated back as the bucket
    midpoint ``2·γ^i/(γ+1)``, which is within relative error ``α`` of
    anything in the bucket.  Zeros get a dedicated exact bucket.
    """

    __slots__ = ("alpha", "_gamma", "_ln_gamma", "_bins", "_zeros", "count", "_stats")

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._ln_gamma = math.log(self._gamma)
        self._bins: Dict[int, int] = {}
        self._zeros: int = 0
        self.count: int = 0
        self._stats = StatAccumulator()

    # -- folding ----------------------------------------------------------

    def add(self, value: Optional[float]) -> None:
        """Fold a sample; ``None`` is skipped (incomplete sessions)."""
        if value is None:
            return
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(f"QuantileSketch samples must be finite and >= 0, got {value!r}")
        self.count += 1
        self._stats.add(value)
        if value <= 0.0:
            self._zeros += 1
            return
        index = math.ceil(math.log(value) / self._ln_gamma)
        # Guard the bucket edge: float log can land one bucket high/low
        # right at a boundary; nudge so the invariant γ^(i-1) < x <= γ^i
        # genuinely holds and equal samples always share a bucket.
        if self._gamma ** (index - 1) >= value:
            index -= 1
        elif self._gamma ** index < value:
            index += 1
        self._bins[index] = self._bins.get(index, 0) + 1

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in: integer bucket adds — fully exact."""
        if not math.isclose(self.alpha, other.alpha, rel_tol=0.0, abs_tol=1e-12):
            raise ValueError(
                f"cannot merge sketches with different accuracy "
                f"(alpha {self.alpha} vs {other.alpha})"
            )
        for index in sorted(other._bins):
            self._bins[index] = self._bins.get(index, 0) + other._bins[index]
        self._zeros += other._zeros
        self.count += other.count
        self._stats.merge(other._stats)

    # -- queries ----------------------------------------------------------

    @property
    def mean(self) -> Optional[float]:
        return self._stats.mean

    @property
    def min(self) -> Optional[float]:
        return self._stats.min

    @property
    def max(self) -> Optional[float]:
        return self._stats.max

    def __len__(self) -> int:
        return self.count

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (q in [0, 1]) of the folded samples.

        Nearest-rank semantics: the estimate is within relative error
        ``alpha`` of the sample at rank ``floor(q·(n−1))``.  The extreme
        ranks return the exactly-tracked min/max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            raise ValueError("quantile of empty sketch")
        assert self._stats.min is not None and self._stats.max is not None
        if q <= 0.0:
            return self._stats.min
        if q >= 1.0:
            return self._stats.max
        rank = int(q * (self.count - 1))
        if rank < self._zeros:
            return 0.0
        seen = self._zeros
        for index in sorted(self._bins):
            seen += self._bins[index]
            if rank < seen:
                estimate = 2.0 * self._gamma**index / (self._gamma + 1.0)
                # min/max are exact; never estimate outside them.
                return min(max(estimate, self._stats.min), self._stats.max)
        return self._stats.max  # pragma: no cover - float edge

    def percentile(self, p: float) -> float:
        """Percentile flavour of :meth:`quantile` (p in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("p must be in [0, 100]")
        return self.quantile(p / 100.0)

    def fraction_at_or_below(self, x: float) -> float:
        """Approximate P(X <= x); same relative-error resolution."""
        if self.count == 0:
            raise ValueError("CDF of empty sketch")
        if x < 0.0:
            return 0.0
        covered = self._zeros
        if x <= 0.0:
            return covered / self.count
        limit = math.ceil(math.log(x) / self._ln_gamma)
        for index in sorted(self._bins):
            if index > limit:
                break
            covered += self._bins[index]
        return covered / self.count

    def cdf(self) -> "SketchCdf":
        return SketchCdf(self)

    # -- serialization ----------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "alpha": self.alpha,
            "zeros": self._zeros,
            "count": self.count,
            "bins": {str(i): self._bins[i] for i in sorted(self._bins)},
            "stats": self._stats.to_json(),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "QuantileSketch":
        out = cls(alpha=float(payload["alpha"]))  # type: ignore[arg-type]
        out._zeros = int(payload["zeros"])  # type: ignore[arg-type]
        out.count = int(payload["count"])  # type: ignore[arg-type]
        bins: Mapping[str, int] = payload["bins"]  # type: ignore[assignment]
        out._bins = {int(i): int(n) for i, n in bins.items()}
        out._stats = StatAccumulator.from_json(payload["stats"])  # type: ignore[arg-type]
        return out


class SketchCdf:
    """Duck-compatible stand-in for :class:`repro.metrics.stats.Cdf`.

    Report code plots CDFs via ``at`` / ``quantile`` / ``fraction_above``
    / ``series``; this adapter answers the same calls from a sketch, so
    percentile/CDF paths no longer assume full sample retention.
    """

    __slots__ = ("_sketch",)

    def __init__(self, sketch: QuantileSketch) -> None:
        if sketch.count == 0:
            raise ValueError("CDF of empty sketch")
        self._sketch = sketch

    def __len__(self) -> int:
        return self._sketch.count

    @property
    def min(self) -> float:
        value = self._sketch.min
        assert value is not None
        return value

    @property
    def max(self) -> float:
        value = self._sketch.max
        assert value is not None
        return value

    def at(self, x: float) -> float:
        """P(X <= x)."""
        return self._sketch.fraction_at_or_below(x)

    def quantile(self, q: float) -> float:
        """Inverse CDF, q in [0, 1]."""
        return self._sketch.quantile(q)

    def fraction_above(self, x: float) -> float:
        """P(X > x)."""
        return 1.0 - self.at(x)

    def series(self, points: int = 50) -> List[Tuple[float, float]]:
        """(value, cumulative probability) pairs for plotting/printing."""
        out = []
        for i in range(points + 1):
            q = i / points
            out.append((self.quantile(q), q))
        return out

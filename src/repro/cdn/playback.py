"""First-frame playback conditions (§VII).

Client-side players declare when the "first frame" is displayable —
after one video frame, after N frames, or after a buffered duration.
Wira adapts by setting the parser's Θ_VF accordingly: "the presented
Wira can adapt to differentiated first-frame playback conditions by
configuring the number of parsed video (audio) frames".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlaybackPolicy:
    """Maps a player's start condition to the parser threshold Θ_VF."""

    video_frames_required: int = 1
    buffered_seconds_required: float = 0.0

    def __post_init__(self) -> None:
        if self.video_frames_required < 1:
            raise ValueError("at least one video frame is required")
        if self.buffered_seconds_required < 0:
            raise ValueError("buffered duration must be non-negative")

    def video_frame_threshold(self, fps: float = 25.0) -> int:
        """Θ_VF for this policy at a given stream frame rate."""
        from_buffer = int(self.buffered_seconds_required * fps)
        return max(self.video_frames_required, from_buffer, 1)


FIRST_VIDEO_FRAME = PlaybackPolicy(video_frames_required=1)
"""The paper's default: display as soon as the first I frame lands."""

THREE_FRAME_START = PlaybackPolicy(video_frames_required=3)
"""The §IV-A worked example with Θ_VF = 3."""

"""The Wira proxy server (§V).

Mirrors the paper's nginx+LSQUIC integration points:

* ``parse_hs_data`` — :meth:`WiraServer._on_client_hello` extracts the
  HQST tag from the CHLO and validates the echoed cookie;
* ``ngx_quic_send_data`` / ``ngx_quic_flv_parser_parse_or_send`` —
  :meth:`WiraServer._deliver_batch` feeds outbound bytes through the
  Frame Perception parser before handing them to the transport;
* the LSQUIC *send controller* — initial cwnd and pacing rate are set
  through the congestion-controller hooks per Table I, honouring both
  corner cases of §IV-C;
* periodic Hx_QoS synchronisation every ``sync_period`` seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.cdn.origin import Origin
from repro.core.config import WiraConfig
from repro.core.frame_perception import FrameParser
from repro.core.initializer import InitialParams
from repro.core.schemes import InitContext, InitPolicy, SchemeLike, as_spec, make_policy
from repro.core.transport_cookie import (
    HxQos,
    ServerCookieManager,
    decode_hqst,
)
from repro.core.cookie_crypto import CookieError
from repro.media import flv
from repro.quic.connection import Connection
from repro.quic.handshake import TAG_HQST
from repro.simnet.engine import EventLoop


@dataclass
class ServerSessionState:
    """What the proxy learned about this connection so far."""

    hx_qos: Optional[HxQos] = None
    measured_rtt: Optional[float] = None
    cookie_present: bool = False
    initial_params: Optional[InitialParams] = None
    reinitialized: bool = False  # corner case 1 second pass happened
    ff_size: Optional[int] = None


class WiraServer:
    """One proxy-side session handler bound to a server connection."""

    def __init__(
        self,
        loop: EventLoop,
        connection: Connection,
        origin: Origin,
        scheme: SchemeLike,
        wira_config: Optional[WiraConfig] = None,
        cookie_manager: Optional[ServerCookieManager] = None,
        clock_offset: float = 0.0,
        max_video_frames: int = 6,
        initial_params_override: Optional[InitialParams] = None,
        ff_size_fault: Optional[int] = None,
        on_ff_size_fault: Optional[Callable[[int], None]] = None,
        init_policy: Optional[InitPolicy] = None,
    ) -> None:
        self.loop = loop
        self.connection = connection
        self.origin = origin
        self.scheme = as_spec(scheme)
        #: The scheme's behaviour.  Callers running a session *chain*
        #: pass the chain's shared (possibly stateful) policy so online
        #: schemes can learn across sessions; a fresh stateless instance
        #: is built otherwise.
        self.policy = init_policy if init_policy is not None else make_policy(scheme)
        self.config = wira_config or WiraConfig()
        self.cookie_manager = cookie_manager
        self.clock_offset = clock_offset
        self.max_video_frames = max_video_frames
        self.initial_params_override = initial_params_override
        #: Adversarial testing hook: when set, the parser's completed
        #: FF_Size is replaced with this value before initialisation, so
        #: the Table-I floors/ceilings face hostile inputs (0, 1 byte,
        #: multi-MB) under a live session.
        self.ff_size_fault = ff_size_fault
        self.on_ff_size_fault = on_ff_size_fault
        self.state = ServerSessionState()
        self.parser = FrameParser(self.config.video_frame_threshold)
        self._request_buffer = bytearray()
        self._serving = False
        self._sync_timer = None
        self._closed = False

        connection.on_client_hello = self._on_client_hello
        connection.on_stream_data = self._on_request_data

    @property
    def wall_clock(self) -> float:
        """Server wall time — simulator time plus the session epoch."""
        return self.clock_offset + self.loop.now

    def _trace(self, name: str, data: Dict[str, object]) -> None:
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(self.loop.now, name, self.connection._trace_id, data)

    # ------------------------------------------------------------------
    # Handshake: cookie extraction (§IV-B "Lightweight Hx_QoS obtaining")

    def _on_client_hello(self, tags: Dict[bytes, bytes], rtt_sample: Optional[float]) -> None:
        self.state.measured_rtt = rtt_sample
        hqst = tags.get(TAG_HQST)
        if hqst is None or self.cookie_manager is None:
            reason = "absent" if hqst is None else "no_manager"
            self._trace("wira:cookie_miss", {"reason": reason})
            self._start_sync_timer()
            return
        try:
            supported, _received_at_ms, sealed = decode_hqst(hqst)
        except CookieError:
            supported, sealed = None, None
            self._trace("wira:cookie_miss", {"reason": "decode_error"})
        if supported and sealed:
            self.state.cookie_present = True
            self.state.hx_qos = self.cookie_manager.open_echoed(sealed, now=self.wall_clock)
            if self.state.hx_qos is not None:
                self._trace(
                    "wira:cookie_hit",
                    {
                        "min_rtt": self.state.hx_qos.min_rtt,
                        "max_bw_bps": self.state.hx_qos.max_bw_bps,
                    },
                )
            else:
                self._trace("wira:cookie_miss", {"reason": "stale_or_invalid"})
        elif supported is not None:
            reason = "unsupported" if not supported else "no_cookie"
            self._trace("wira:cookie_miss", {"reason": reason})
        self._start_sync_timer()

    # ------------------------------------------------------------------
    # Request handling and streaming

    def _on_request_data(self, stream_id: int, data: bytes, fin: bool) -> None:
        if self._serving:
            return
        self._request_buffer += data
        line = bytes(self._request_buffer)
        if b"\r\n" not in line and not fin:
            return
        request = line.split(b"\r\n", 1)[0].decode("utf-8", "replace")
        name = self._parse_request(request)
        if name is None:
            return
        self._serving = True
        self._serve(stream_id, name)

    @staticmethod
    def _parse_request(request: str) -> Optional[str]:
        # "GET /live/<name>.flv" or "GET /live/<name>"
        parts = request.split()
        if len(parts) < 2 or parts[0] != "GET":
            return None
        path = parts[1]
        if not path.startswith("/live/"):
            return None
        name = path[len("/live/") :]
        if name.endswith(".flv"):
            name = name[: -len(".flv")]
        return name or None

    def _serve(self, stream_id: int, name: str) -> None:
        self._trace(
            "wira:request_received", {"stream": name, "stream_id": stream_id}
        )
        fetch = self.origin.fetch(
            name, join_time=self.wall_clock, max_video_frames=self.max_video_frames
        )
        # Group frames into availability batches (corner case 1 territory:
        # leading script/audio may be deliverable before the I frame).
        batches: List[Tuple[float, List]] = []
        for frame, delay in fetch.frames:
            # Exact comparison is intended: frames in one availability
            # batch carry the identical sampled delay value, untouched by
            # arithmetic, so grouping by equality cannot mis-split.
            if batches and batches[-1][0] == delay:  # wira-lint: disable=WL003
                batches[-1][1].append(frame)
            else:
                batches.append((delay, [frame]))
        for index, (delay, frames) in enumerate(batches):
            first = index == 0
            last = index == len(batches) - 1
            blob = flv.mux(frames, include_header=first)
            if delay <= 0:
                self._deliver_batch(stream_id, blob, last)
            else:
                self.loop.post_later(delay, self._deliver_batch, stream_id, blob, last)

    def _deliver_batch(self, stream_id: int, blob: bytes, last: bool) -> None:
        """Parse-then-send, the ngx_quic_send_data integration point."""
        if self.parser.bytes_fed == 0:
            self._trace("wira:parse_begin", {"batch_bytes": len(blob)})
        ff_size = self.parser.feed(blob)
        if ff_size is not None and self.state.ff_size is None:
            if self.ff_size_fault is not None:
                ff_size = self.ff_size_fault
                if self.on_ff_size_fault is not None:
                    self.on_ff_size_fault(ff_size)
            self.state.ff_size = ff_size
            self._trace(
                "wira:parse_complete",
                {"ff_size": ff_size, "bytes_fed": self.parser.bytes_fed},
            )
        self._ensure_initialized()
        self.connection.send_stream_data(stream_id, blob, fin=last)

    def _ensure_initialized(self) -> None:
        """Apply Table-I initial parameters before (re)sending data.

        Called before the first batch goes out and again if the parser
        completed later (corner case 1: "Once the first-frame parsing is
        completed, the init_cwnd will be updated").
        """
        state = self.state
        if self.initial_params_override is not None:
            # Testbed mode (Fig 2): pin exact values, bypass Table I.
            if state.initial_params is None:
                state.initial_params = self.initial_params_override
                self.connection.cc.set_initial_window(self.initial_params_override.cwnd_bytes)
                self.connection.cc.set_initial_pacing_rate(
                    self.initial_params_override.pacing_bps
                )
                self._trace_init(self.initial_params_override, reinit=False)
            return
        if state.initial_params is not None and not state.initial_params.provisional:
            return
        if state.initial_params is not None and state.ff_size is None:
            return  # still provisional, no new signal
        if state.initial_params is not None:
            state.reinitialized = True
        params = self.policy.initial_params(
            InitContext(
                config=self.config,
                ff_size=state.ff_size,
                hx_qos=state.hx_qos,
                measured_rtt=state.measured_rtt,
            )
        )
        state.initial_params = params
        self.connection.cc.set_initial_window(params.cwnd_bytes)
        self.connection.cc.set_initial_pacing_rate(params.pacing_bps)
        self._trace_init(params, reinit=state.reinitialized)

    def _trace_init(self, params: InitialParams, reinit: bool) -> None:
        """Emit the two Wira init-override events as applied."""
        self._trace(
            "wira:init_cwnd",
            {
                "bytes": params.cwnd_bytes,
                "used_ff_size": params.used_ff_size,
                "provisional": params.provisional,
                "reinit": reinit,
            },
        )
        self._trace(
            "wira:init_pacing",
            {"bps": params.pacing_bps, "used_hx_qos": params.used_hx_qos},
        )

    # ------------------------------------------------------------------
    # Periodic Hx_QoS synchronisation (§IV-B)

    def _start_sync_timer(self) -> None:
        if self._sync_timer is None and not self._closed:
            self._sync_timer = self.loop.call_later(self.config.sync_period, self._sync_hx_qos)

    def _sync_hx_qos(self) -> None:
        self._sync_timer = None
        if self._closed:
            return
        self._push_cookie()
        self._start_sync_timer()

    def _push_cookie(self) -> bool:
        """Build and send one sealed Hx_QoS frame if metrics exist."""
        if self.cookie_manager is None:
            return False
        min_rtt = self.connection.measured_min_rtt()
        max_bw = self.connection.measured_max_bw()
        if min_rtt is None or max_bw is None or max_bw <= 0:
            return False
        qos = HxQos(min_rtt=min_rtt, max_bw_bps=max_bw, timestamp=self.wall_clock)
        self.connection.send_hx_qos(self.cookie_manager.build_frame(qos))
        return True

    def flush_cookie(self) -> bool:
        """Push a final cookie immediately (end-of-session sync)."""
        return self._push_cookie()

    def close(self) -> None:
        self._closed = True
        if self._sync_timer is not None:
            self._sync_timer.cancel()
            self._sync_timer = None
        self.connection.close()

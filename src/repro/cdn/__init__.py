"""Application layer: the Fig 10 deployment on the simulator.

A :class:`~repro.cdn.session.StreamingSession` wires together

* an :class:`~repro.cdn.origin.Origin` (the live CDN holding streams),
* a :class:`~repro.cdn.server.WiraServer` (the proxy: frame perception,
  transport cookie, parameter initialisation, streaming),
* a :class:`~repro.cdn.client.WiraClient` (the player: cookie cache,
  CHLO tags, FFCT measurement),

over a :class:`~repro.simnet.path.Path`, and returns the metrics the
paper's evaluation reports (FFCT, FFLR, follow-up frame completion).
"""

from repro.cdn.client import ClientMetrics, WiraClient
from repro.cdn.origin import Origin, OriginFetch
from repro.cdn.playback import PlaybackPolicy
from repro.cdn.server import WiraServer
from repro.cdn.session import SessionResult, SessionSpec, StreamingSession

__all__ = [
    "ClientMetrics",
    "Origin",
    "OriginFetch",
    "PlaybackPolicy",
    "SessionResult",
    "SessionSpec",
    "StreamingSession",
    "WiraClient",
    "WiraServer",
]

"""Run many StreamingSessions batched inside one BatchEventLoop.

:func:`run_sessions` is a drop-in replacement for
``[session.run() for session in sessions]`` that executes every session
inside a single :class:`~repro.simnet.batch.BatchEventLoop`, amortising
scheduler overhead across the batch.  Results are **byte-identical** to
the solo path: each session observes its own clock, its own event order,
and its own rng stream exactly as it would on a private ``EventLoop``
(asserted end-to-end by ``tests/cdn/test_batchrun.py``).

Each session gets a :class:`_SessionDriver` — a small state machine that
replicates ``StreamingSession``'s solo drive loop *exactly*, including
its quirks, because the solo loop's observable behaviour leaks into
results via ``loop.now`` reads inside callbacks:

* ``_run_until_done`` slices the run into ``run_until(min(timeout,
  now + 0.25), max_events=100_000)`` calls; ``run_until`` **always**
  advances the clock to its deadline, even when it returned early on
  ``max_events``;
* ``client.done`` / pending / timeout are only consulted at slice
  boundaries;
* the cookie-flush phase drains until ``now + max(4·rtt, 0.2)`` with the
  same slice discipline.

The driver mirrors those decision points through the kernel's
``_on_boundary`` / ``_on_budget`` / ``_on_drained`` hooks, keeping the
per-event fast path inside the kernel untouched.

Fallback: when a trace bus is active (``WIRA_TRACE=1``) sessions run
solo — the bus scopes events with a per-session context manager, which
cannot interleave — and single-session batches take the solo path too.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, cast

from repro import obs as _obs
from repro.cdn.session import LiveSession, SessionResult, StreamingSession
from repro.simnet.batch import BatchEventLoop, MemberLoop
from repro.simnet.engine import EventLoop

#: Slice parameters of the solo drive loop (``StreamingSession``).
_SLICE_SECONDS = 0.25
_SLICE_EVENTS = 100_000

_PHASE_RUN = 0
_PHASE_FLUSH = 1
_PHASE_DONE = 2


class _SessionDriver:
    """Replays the solo drive loop for one batched session."""

    __slots__ = ("session", "member", "live", "phase", "pushed", "result")

    def __init__(
        self, session: StreamingSession, member: MemberLoop, live: LiveSession
    ) -> None:
        self.session = session
        self.member = member
        self.live = live
        self.phase = _PHASE_RUN
        self.pushed = False
        self.result: Optional[SessionResult] = None
        member._on_boundary = self._on_boundary
        member._on_budget = self._on_budget
        member._on_drained = self._on_drained

    # -- slice bookkeeping -------------------------------------------------

    def start(self) -> None:
        """Evaluate the drive loop's condition for the first time."""
        if not self._begin_run_slice():
            self._enter_flush()

    def _begin_run_slice(self) -> bool:
        """One iteration of the solo ``while`` condition; arm a slice."""
        member = self.member
        session = self.session
        if (
            not self.live.client.done
            and member._pending > 0
            and member._now < session.timeout
        ):
            member._horizon = min(session.timeout, member._now + _SLICE_SECONDS)
            member._budget = _SLICE_EVENTS
            return True
        return False

    # -- kernel hooks ------------------------------------------------------

    def _on_boundary(self, when: float) -> None:
        """Next event lies beyond the slice deadline.

        Solo equivalent: ``run_until`` returned on its ``until`` check,
        set ``now = deadline``, and the drive loop re-evaluated.  Empty
        slices fast-forward in a loop until the event is reachable or
        the phase ends.
        """
        member = self.member
        if self.phase == _PHASE_RUN:
            while True:
                member._now = member._horizon
                if not self._begin_run_slice():
                    self._enter_flush()
                    return
                if when <= member._horizon:
                    return
        elif self.phase == _PHASE_FLUSH:
            # run_until(drained) set now = drained; the flush loop's
            # condition (now < drained) is now false.
            member._now = member._horizon
            self._finalize()

    def _on_budget(self) -> None:
        """Slice exhausted its 100k-event budget mid-stream.

        Solo equivalent: ``run_until`` returned on ``max_events`` and
        *still* set ``now = deadline`` — replicated verbatim, including
        the consequence that in the flush phase remaining events are
        abandoned.
        """
        member = self.member
        member._now = member._horizon
        if self.phase == _PHASE_RUN:
            if not self._begin_run_slice():
                self._enter_flush()
        elif self.phase == _PHASE_FLUSH:
            self._finalize()

    def _on_drained(self) -> None:
        """The member has no pending events left.

        Solo equivalent: ``run_until`` ran the heap dry, set ``now`` to
        its deadline, and the drive loop exited on the pending check.
        """
        member = self.member
        member._now = member._horizon
        if self.phase == _PHASE_RUN:
            self._enter_flush()
        elif self.phase == _PHASE_FLUSH:
            self._finalize()

    # -- phase transitions -------------------------------------------------

    def _enter_flush(self) -> None:
        """End-of-session cookie push, exactly as the solo driver does."""
        session = self.session
        member = self.member
        live = self.live
        self.phase = _PHASE_FLUSH
        if live.client.done and session.client_supports_cookies:
            self.pushed = live.server.flush_cookie()
            if self.pushed:
                drained = member._now + max(4 * session.conditions.rtt, 0.2)
                if member._pending > 0 and member._now < drained:
                    member._horizon = drained
                    member._budget = _SLICE_EVENTS
                    return
        self._finalize()

    def _finalize(self) -> None:
        member = self.member
        live = self.live
        self.phase = _PHASE_DONE
        cookie_delivered = self.pushed and live.client.metrics.cookies_received > 0
        self.result = self.session._finalize(live, cookie_delivered)
        member._finished = True
        member._pending = 0


def run_sessions(sessions: Sequence[StreamingSession]) -> List[SessionResult]:
    """Run sessions batched; byte-identical to running each solo.

    Falls back to the solo path when a trace bus is active (per-session
    event scoping cannot interleave) or when batching cannot help.
    """
    if _obs.ACTIVE is not None or len(sessions) <= 1:
        return [session.run() for session in sessions]
    kernel = BatchEventLoop()
    drivers: List[_SessionDriver] = []
    for session in sessions:
        member = kernel.member()
        live = session._setup(cast(EventLoop, member))
        drivers.append(_SessionDriver(session, member, live))
    for driver in drivers:
        driver.start()
    kernel.run()
    results: List[SessionResult] = []
    for driver in drivers:
        if driver.result is None:  # pragma: no cover - defensive
            raise RuntimeError("batched session did not finalize")
        results.append(driver.result)
    return results

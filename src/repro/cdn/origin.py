"""Live CDN origin: the upstream the proxy pulls GOPs from.

The proxy "can pull the requested live-streaming data from our live CDN"
(Fig 10).  :class:`Origin` maps stream names to
:class:`~repro.media.source.LiveSource` generators and answers fetches
with the GOP bundle a viewer joining *now* should receive.

To exercise corner case 1 of §IV-C — the FLV header/script/audio being
"delivered to L4 in turn before the I frame has been pulled" — a fetch
can stagger frame availability: each frame comes with the time offset at
which the origin hands it to the proxy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.media.frames import MediaFrame
from repro.media.source import LiveSource, StreamProfile


@dataclass(frozen=True)
class OriginFetch:
    """Result of one origin pull.

    ``frames`` pair each media frame with its availability offset in
    seconds relative to the fetch (0.0 = immediately available).
    """

    stream_name: str
    frames: Tuple[Tuple[MediaFrame, float], ...]

    @property
    def media_frames(self) -> List[MediaFrame]:
        return [frame for frame, _ in self.frames]

    @property
    def total_bytes(self) -> int:
        return sum(frame.size for frame, _ in self.frames)


class UnknownStreamError(KeyError):
    """Requested stream is not hosted by this origin."""


class Origin:
    """Holds live streams and serves GOP bundles.

    Parameters
    ----------
    i_frame_pull_delay:
        Seconds by which the I frame (and everything after it) lags the
        leading script/audio frames when fetched — 0 disables corner
        case 1; a few milliseconds reproduces it.
    """

    def __init__(self, i_frame_pull_delay: float = 0.0) -> None:
        if i_frame_pull_delay < 0:
            raise ValueError("pull delay must be non-negative")
        self.i_frame_pull_delay = i_frame_pull_delay
        self._streams: Dict[str, LiveSource] = {}

    def add_stream(self, name: str, profile: StreamProfile) -> LiveSource:
        source = LiveSource(profile)
        self._streams[name] = source
        return source

    def get_source(self, name: str) -> LiveSource:
        try:
            return self._streams[name]
        except KeyError:
            raise UnknownStreamError(name) from None

    def stream_names(self) -> List[str]:
        return sorted(self._streams)

    def fetch(
        self,
        name: str,
        join_time: float,
        max_video_frames: Optional[int] = None,
    ) -> OriginFetch:
        """GOP bundle for a viewer joining ``name`` at ``join_time``.

        ``max_video_frames`` truncates the bundle after that many video
        frames (sessions only need the first few for FFCT/follow-up
        measurements; a full 2 s GOP would be wasted simulation work).
        """
        source = self.get_source(name)
        gop = source.gop_at(join_time)
        frames: List[Tuple[MediaFrame, float]] = []
        video_seen = 0
        saw_video = False
        for frame in gop.frames:
            if frame.is_video:
                saw_video = True
                video_seen += 1
            delay = self.i_frame_pull_delay if saw_video else 0.0
            frames.append((frame, delay))
            if max_video_frames is not None and video_seen >= max_video_frames:
                break
        return OriginFetch(name, tuple(frames))

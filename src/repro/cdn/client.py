"""The Wira player client.

Clients are "upgraded to support Hx_QoS can be synchronized and stored
locally, which will be carried in its CHLO packets when requesting some
live-streaming resource" (§V).  Besides the cookie plumbing, the client
is where the paper's metrics are measured: the first-frame completion
time is "the client-side waiting time from sending out the request
packet to displaying the first screen" (§I), so the FLV demuxer runs
here and timestamps every completed video frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro import obs as _obs
from repro.cdn.playback import PlaybackPolicy, FIRST_VIDEO_FRAME
from repro.core.transport_cookie import ClientCookieStore, encode_hqst
from repro.media import flv
from repro.quic.connection import Connection
from repro.quic.frames import HxQosFrame
from repro.simnet.engine import EventLoop


@dataclass
class ClientMetrics:
    """Everything the evaluation reads from the player side."""

    request_sent_at: Optional[float] = None
    first_byte_at: Optional[float] = None
    first_frame_at: Optional[float] = None
    video_frame_times: List[float] = field(default_factory=list)
    bytes_received: int = 0
    cookies_received: int = 0

    @property
    def ffct(self) -> Optional[float]:
        """First-frame completion time, seconds."""
        if self.first_frame_at is None or self.request_sent_at is None:
            return None
        return self.first_frame_at - self.request_sent_at

    def frame_completion_time(self, k: int) -> Optional[float]:
        """Completion time of the k-th video frame (1-based), seconds."""
        if k < 1 or k > len(self.video_frame_times) or self.request_sent_at is None:
            return None
        return self.video_frame_times[k - 1] - self.request_sent_at


class WiraClient:
    """One player session bound to a client connection."""

    def __init__(
        self,
        loop: EventLoop,
        connection: Connection,
        stream_name: str,
        origin_id: str = "origin",
        cookie_store: Optional[ClientCookieStore] = None,
        playback: PlaybackPolicy = FIRST_VIDEO_FRAME,
        target_video_frames: int = 4,
        clock_offset: float = 0.0,
        on_first_frame: Optional[Callable[[], None]] = None,
        on_video_frame: Optional[Callable[[int], None]] = None,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        if target_video_frames < 1:
            raise ValueError("need at least one target video frame")
        self.loop = loop
        self.connection = connection
        self.stream_name = stream_name
        self.origin_id = origin_id
        self.cookie_store = cookie_store
        self.playback = playback
        self.target_video_frames = max(
            target_video_frames, playback.video_frame_threshold()
        )
        self.clock_offset = clock_offset
        self.on_first_frame = on_first_frame
        self.on_video_frame = on_video_frame
        self.on_done = on_done
        self.metrics = ClientMetrics()
        self.done = False
        self._demuxer = flv.FlvDemuxer(expect_header=True)
        self._video_frames_seen = 0
        connection.on_stream_data = self._on_stream_data
        connection.on_hx_qos = self._on_hx_qos
        if cookie_store is not None:
            # Route store evictions into this session's trace scope.  A
            # chain's store outlives each session, so every client
            # re-points the observer at its own loop clock — evictions
            # always stamp the *current* session's (monotonic) time.
            cookie_store.set_on_evict(self._on_cookie_evicted)

    @property
    def wall_clock(self) -> float:
        return self.clock_offset + self.loop.now

    def _trace(self, name: str, data: dict) -> None:
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(self.loop.now, name, self.connection._trace_id, data)

    # ------------------------------------------------------------------

    @staticmethod
    def build_hqst_tag(
        cookie_store: Optional[ClientCookieStore],
        origin_id: str,
        supported: bool = True,
    ) -> bytes:
        """HQST tag value for the CHLO, echoing any stored cookie."""
        if not supported:
            return encode_hqst(False)
        stored = cookie_store.get(origin_id) if cookie_store is not None else None
        if stored is None:
            return encode_hqst(True)
        sealed, received_at = stored
        return encode_hqst(True, received_at_ms=int(received_at * 1000), sealed_frame=sealed)

    def start(self) -> None:
        """Launch the handshake and send the play request."""
        self.connection.start()
        self.metrics.request_sent_at = self.loop.now
        self._trace("session:request_sent", {"stream": self.stream_name})
        request = f"GET /live/{self.stream_name}.flv\r\n".encode("ascii")
        self.connection.send_stream_data(0, request, fin=True)

    # ------------------------------------------------------------------

    def _on_stream_data(self, stream_id: int, data: bytes, fin: bool) -> None:
        if not data:
            return
        if self.metrics.first_byte_at is None:
            self.metrics.first_byte_at = self.loop.now
            self._trace("session:first_byte", {})
        self.metrics.bytes_received += len(data)
        for tag in self._demuxer.feed(data):
            if not tag.is_video:
                continue
            self._video_frames_seen += 1
            self.metrics.video_frame_times.append(self.loop.now)
            self._trace("session:video_frame", {"k": self._video_frames_seen})
            if self.on_video_frame is not None:
                self.on_video_frame(self._video_frames_seen)
            if (
                self._video_frames_seen == self.playback.video_frame_threshold()
                and self.metrics.first_frame_at is None
            ):
                self.metrics.first_frame_at = self.loop.now
                self._trace(
                    "session:first_frame",
                    {"k": self._video_frames_seen, "ffct": self.metrics.ffct},
                )
                if self.on_first_frame is not None:
                    self.on_first_frame()
            if self._video_frames_seen >= self.target_video_frames and not self.done:
                self.done = True
                self._trace("session:done", {"frames": self._video_frames_seen})
                if self.on_done is not None:
                    self.on_done()

    def _on_cookie_evicted(self, origin: str, reason: str) -> None:
        self._trace("wira:cookie_evicted", {"origin": origin, "reason": reason})

    def _on_hx_qos(self, frame: HxQosFrame) -> None:
        self.metrics.cookies_received += 1
        self._trace("wira:cookie_received", {"n": self.metrics.cookies_received})
        if self.cookie_store is not None:
            self.cookie_store.on_hx_qos_frame(self.origin_id, frame, now=self.wall_clock)

"""One streaming session end-to-end on the simulator.

A session reproduces the paper's measurement unit: a client joins a live
stream through the Wira proxy, and we record

* **FFCT** — request sent → Θ_VF-th video frame complete (Fig 11–13),
* **FFLR** — data-packet loss over the first-frame transfer (Fig 14),
* **follow-up frames** — completion time and loss through the first
  four video frames (Fig 15),
* cookie round-trip — the end-of-session Hx_QoS push that seeds the
  *next* session of the same OD pair.

Sessions are independent event-loop universes; continuity between
sessions of one OD pair lives in the client's
:class:`~repro.core.transport_cookie.ClientCookieStore` and the shared
``epoch`` wall clock passed in by the caller.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs as _obs
from repro.cdn.client import ClientMetrics, WiraClient
from repro.cdn.origin import Origin
from repro.cdn.playback import PlaybackPolicy, FIRST_VIDEO_FRAME
from repro.cdn.server import WiraServer
from repro.core.config import WiraConfig
from repro.core.initializer import InitialParams, Scheme
from repro.core.schemes import InitPolicy, SchemeLike, SchemeSpec, as_spec, make_policy
from repro.core.transport_cookie import ClientCookieStore, ServerCookieManager
from repro.faults import FaultInjector, FaultPlan
from repro.quic.config import QuicConfig
from repro.quic.connection import Connection, ConnectionStats, HandshakeMode, Role
from repro.quic.handshake import TAG_HQST
from repro.runtime import settings
from repro.simnet.engine import EventLoop
from repro.simnet.link import Datagram
from repro.simnet.path import NetworkConditions, Path
from repro.simnet.schedule import PathSchedule

DEFAULT_COOKIE_KEY = b"wira-server-secret-key-32bytes!!"


@dataclass(frozen=True)
class SessionSpec:
    """Everything that *defines* one session, immutably.

    This is the supported construction path for sessions: build a spec,
    then :meth:`StreamingSession.from_spec` it together with the shared
    *environment* (origin, cookie store/manager) that carries state
    between sessions of an OD pair.  Keeping definition and environment
    apart is what lets the fleet engine ship specs across process
    boundaries and replay them byte-identically.

    Fields mirror the deployment dimensions §VI varies plus the PR-4
    adversity axes; defaults reproduce the plain testbed session.
    """

    conditions: NetworkConditions
    scheme: SchemeLike
    handshake_mode: HandshakeMode = HandshakeMode.ZERO_RTT
    epoch: float = 0.0
    seed: int = 0
    timeout: float = 30.0
    playback: PlaybackPolicy = FIRST_VIDEO_FRAME
    target_video_frames: int = 4
    client_supports_cookies: bool = True
    wira_config: Optional[WiraConfig] = None
    quic_config: Optional[QuicConfig] = None
    initial_params_override: Optional[InitialParams] = None
    schedule: Optional[PathSchedule] = None
    fault_plan: Optional[FaultPlan] = None
    trace_label: Optional[str] = None

    def with_(self, **changes: object) -> "SessionSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass
class SessionResult:
    """Everything one session contributes to the evaluation."""

    scheme: SchemeLike
    handshake_mode: HandshakeMode
    conditions: NetworkConditions
    completed: bool
    client_metrics: ClientMetrics
    ff_size_parsed: Optional[int]
    initial_params: Optional[InitialParams]
    ff_server_stats: Optional[ConnectionStats]
    final_server_stats: ConnectionStats
    frame_stats_snapshots: List[ConnectionStats] = field(default_factory=list)
    cookie_delivered: bool = False
    used_cookie: bool = False
    server_min_rtt: Optional[float] = None
    server_max_bw: Optional[float] = None
    #: FFCT decomposed into phases — populated only when the session ran
    #: under an active trace bus (``WIRA_TRACE=1``), ``None`` otherwise.
    phase_breakdown: Optional[_obs.PhaseBreakdown] = None
    #: Injected-fault action counts (``None`` when no fault plan ran;
    #: ``{}`` when a plan ran but never fired, e.g. a cookie fault with
    #: no cookie to corrupt).
    fault_summary: Optional[Dict[str, int]] = None

    @property
    def ffct(self) -> Optional[float]:
        return self.client_metrics.ffct

    @property
    def fflr(self) -> Optional[float]:
        """First-frame loss rate: data-packet loss through FF completion."""
        if self.ff_server_stats is None:
            return None
        return self.ff_server_stats.data_loss_rate()

    def frame_time(self, k: int) -> Optional[float]:
        return self.client_metrics.frame_completion_time(k)

    def frame_loss_rate(self, k: int) -> Optional[float]:
        """Data-packet loss rate through the k-th video frame."""
        if k < 1 or k > len(self.frame_stats_snapshots):
            return None
        return self.frame_stats_snapshots[k - 1].data_loss_rate()


@dataclass
class LiveSession:
    """A session's live topology between ``_setup`` and ``_finalize``.

    Holding these as one value lets the solo driver and the batched
    driver (:mod:`repro.cdn.batchrun`) share the exact same construction
    and teardown code, differing only in *how* the event loop between
    them is advanced.
    """

    conditions: NetworkConditions
    injector: Optional[FaultInjector]
    path: Path
    server_conn: Connection
    client_conn: Connection
    server: WiraServer
    client: WiraClient
    ff_stats: List[ConnectionStats]
    frame_snapshots: List[ConnectionStats]


class StreamingSession:
    """Builds and runs one client↔proxy session.

    The supported construction path is :meth:`from_spec`: an immutable
    :class:`SessionSpec` (what to run) plus the environment shared along
    an OD pair's chain (origin, cookie store, cookie manager).  The
    positional kwarg constructor predates the spec API and survives as a
    thin deprecated shim with identical behaviour.
    """

    def __init__(
        self,
        conditions: NetworkConditions,
        scheme: Scheme,
        origin: Origin,
        stream_name: str,
        handshake_mode: HandshakeMode = HandshakeMode.ZERO_RTT,
        wira_config: Optional[WiraConfig] = None,
        quic_config: Optional[QuicConfig] = None,
        cookie_store: Optional[ClientCookieStore] = None,
        cookie_manager: Optional[ServerCookieManager] = None,
        playback: PlaybackPolicy = FIRST_VIDEO_FRAME,
        target_video_frames: int = 4,
        epoch: float = 0.0,
        seed: int = 0,
        timeout: float = 30.0,
        client_supports_cookies: bool = True,
        initial_params_override: Optional[InitialParams] = None,
        trace_label: Optional[str] = None,
        schedule: Optional[PathSchedule] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        warnings.warn(
            "StreamingSession(kwargs...) is deprecated; build a SessionSpec "
            "and use StreamingSession.from_spec(spec, origin, stream_name, ...)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._bind(
            SessionSpec(
                conditions=conditions,
                scheme=scheme,
                handshake_mode=handshake_mode,
                epoch=epoch,
                seed=seed,
                timeout=timeout,
                playback=playback,
                target_video_frames=target_video_frames,
                client_supports_cookies=client_supports_cookies,
                wira_config=wira_config,
                quic_config=quic_config,
                initial_params_override=initial_params_override,
                schedule=schedule,
                fault_plan=fault_plan,
                trace_label=trace_label,
            ),
            origin,
            stream_name,
            cookie_store,
            cookie_manager,
        )

    @classmethod
    def from_spec(
        cls,
        spec: SessionSpec,
        origin: Origin,
        stream_name: str,
        cookie_store: Optional[ClientCookieStore] = None,
        cookie_manager: Optional[ServerCookieManager] = None,
        stream_data_tap: Optional[Callable[[float, int, bytes, bool], None]] = None,
        hx_qos_tap: Optional[Callable[[float, object], None]] = None,
        init_policy: Optional[InitPolicy] = None,
    ) -> "StreamingSession":
        """Build a session from an immutable spec plus its environment.

        ``stream_data_tap`` / ``hx_qos_tap`` observe what the *client*
        connection delivers, stamped with the loop time, without
        altering behaviour — ``(now, stream_id, data, fin)`` for stream
        data and ``(now, frame)`` for pushed Hx_QoS frames.  The serve
        shard uses them to capture the sim's delivery timeline for
        socket replay; ``None`` (the default) installs nothing.

        ``init_policy`` is part of the session *environment*, like the
        cookie store: chain drivers pass the OD pair's shared policy
        instance so stateful schemes (e.g. ``adaptive``) carry learned
        state across the chain.  ``None`` builds a fresh policy from
        ``spec.scheme``.
        """
        session = cls.__new__(cls)
        session._bind(
            spec,
            origin,
            stream_name,
            cookie_store,
            cookie_manager,
            stream_data_tap=stream_data_tap,
            hx_qos_tap=hx_qos_tap,
            init_policy=init_policy,
        )
        return session

    def _bind(
        self,
        spec: SessionSpec,
        origin: Origin,
        stream_name: str,
        cookie_store: Optional[ClientCookieStore],
        cookie_manager: Optional[ServerCookieManager],
        stream_data_tap: Optional[Callable[[float, int, bytes, bool], None]] = None,
        hx_qos_tap: Optional[Callable[[float, object], None]] = None,
        init_policy: Optional[InitPolicy] = None,
    ) -> None:
        self.spec = spec
        self.conditions = spec.conditions
        self.scheme: SchemeSpec = as_spec(spec.scheme)
        self.origin = origin
        self.stream_name = stream_name
        self.handshake_mode = spec.handshake_mode
        self.wira_config = spec.wira_config or WiraConfig()
        self.init_policy = (
            init_policy
            if init_policy is not None
            else make_policy(self.scheme, seed=spec.seed)
        )
        # Transport stack: an explicit spec override wins, then the
        # scheme's own transport selection (cc / recovery knobs), then
        # the stock defaults.
        self.quic_config = (
            spec.quic_config or self.init_policy.quic_config() or QuicConfig()
        )
        self.cookie_store = cookie_store
        self.playback = spec.playback
        self.target_video_frames = spec.target_video_frames
        self.epoch = spec.epoch
        self.seed = spec.seed
        self.timeout = spec.timeout
        self.client_supports_cookies = spec.client_supports_cookies
        self.initial_params_override = spec.initial_params_override
        self.trace_label = spec.trace_label
        self.schedule = spec.schedule
        self.fault_plan = spec.fault_plan
        self.stream_data_tap = stream_data_tap
        self.hx_qos_tap = hx_qos_tap
        if cookie_manager is not None:
            self.cookie_manager = cookie_manager
        else:
            # Seed the nonce salt so two default managers (one per
            # session seed) never share a nonce sequence even though
            # every manager's counter starts at 0 under one key.
            self.cookie_manager = ServerCookieManager(
                DEFAULT_COOKIE_KEY,
                staleness_delta=self.wira_config.staleness_delta,
                instance_salt=b"session:%d" % spec.seed,
            )

    def run(self) -> SessionResult:
        bus = _obs.ACTIVE
        if bus is None:
            return self._run()
        label = self.trace_label or f"{self.scheme.value}-seed{self.seed}"
        with bus.session(label) as events:
            result = self._run()
        result.phase_breakdown = _obs.profile_events(events)
        return result

    def _run(self) -> SessionResult:
        loop = EventLoop()
        live = self._setup(loop)
        self._run_until_done(loop, live.client)

        # End-of-session synchronisation: push a final cookie so the
        # *next* session of this OD pair has fresh Hx_QoS, then drain.
        pushed = False
        if live.client.done and self.client_supports_cookies:
            pushed = live.server.flush_cookie()
            if pushed:
                drained = loop.now + max(4 * self.conditions.rtt, 0.2)
                self._run_until(loop, drained)
        cookie_delivered = pushed and live.client.metrics.cookies_received > 0
        return self._finalize(live, cookie_delivered)

    def _setup(self, loop: EventLoop) -> "LiveSession":
        """Construct the full session topology on ``loop``.

        Everything through ``client.start()`` happens here, in exactly
        the historical order (the session rng is consumed in a fixed
        sequence, so moving any construction step would change every
        seeded replay).  ``loop`` may be a solo ``EventLoop`` or a
        :class:`repro.simnet.batch.MemberLoop` — the session only uses
        the shared scheduling surface.
        """
        rng = random.Random(self.seed)
        conditions = self.conditions
        if self.schedule is not None:
            conditions = self.schedule.initial_conditions(conditions)
        # Batched link admission needs conditions that never change
        # mid-run; only a PathSchedule can change them.
        fast = self.schedule is None and settings.current().fast_link
        path = Path(loop, conditions, rng=random.Random(rng.getrandbits(48)), fast=fast)

        # Every adverse-path draw below is conditional so that sessions
        # without a schedule or fault plan consume the session rng in
        # exactly the pre-existing order and replay byte-identically.
        injector: Optional[FaultInjector] = None
        send_to_client = path.send_to_client
        send_to_server = path.send_to_server
        # Train-transmit hooks only without an injector: the injector
        # wraps sends one datagram at a time.
        burst_to_client: Optional[Callable[[Sequence[Datagram]], List[bool]]]
        burst_to_server: Optional[Callable[[Sequence[Datagram]], List[bool]]]
        burst_to_client = path.forward.send_burst
        burst_to_server = path.reverse.send_burst
        if self.fault_plan is not None:
            injector = FaultInjector(
                self.fault_plan, loop, random.Random(rng.getrandbits(48))
            )
            send_to_client = injector.wrap_send(path.send_to_client, "to_client")
            send_to_server = injector.wrap_send(path.send_to_server, "to_server")
            burst_to_client = None
            burst_to_server = None
        if self.schedule is not None and not self.schedule.is_inert:
            self.schedule.install(loop, path, random.Random(rng.getrandbits(48)))

        server_conn = Connection(
            loop,
            Role.SERVER,
            send_to_client,
            self.quic_config,
            rng=random.Random(rng.getrandbits(48)),
            send_burst=burst_to_client,
        )
        hqst = WiraClient.build_hqst_tag(
            self.cookie_store, origin_id="origin", supported=self.client_supports_cookies
        )
        if injector is not None:
            hqst = injector.mutate_hqst(hqst)
        client_conn = Connection(
            loop,
            Role.CLIENT,
            send_to_server,
            self.quic_config,
            handshake_mode=self.handshake_mode,
            handshake_tags={TAG_HQST: hqst},
            rng=random.Random(rng.getrandbits(48)),
            send_burst=burst_to_server,
        )
        path.deliver_to_server = server_conn.datagram_received
        path.deliver_to_client = client_conn.datagram_received

        theta = self.playback.video_frame_threshold()
        # §VII: Wira adapts Θ_VF to the client's playback condition, so
        # the parser's first frame matches what the player waits for.
        wira_config = self.wira_config
        if theta > wira_config.video_frame_threshold:
            wira_config = replace(wira_config, video_frame_threshold=theta)
        server = WiraServer(
            loop,
            server_conn,
            self.origin,
            self.scheme,
            init_policy=self.init_policy,
            wira_config=wira_config,
            cookie_manager=self.cookie_manager,
            clock_offset=self.epoch,
            max_video_frames=max(self.target_video_frames, theta) + 2,
            initial_params_override=self.initial_params_override,
            ff_size_fault=injector.ff_size_override if injector is not None else None,
            on_ff_size_fault=injector.note_ff_size_override if injector is not None else None,
        )

        ff_stats: List[ConnectionStats] = []
        frame_snapshots: List[ConnectionStats] = []

        client = WiraClient(
            loop,
            client_conn,
            stream_name=self.stream_name,
            origin_id="origin",
            cookie_store=self.cookie_store,
            playback=self.playback,
            target_video_frames=self.target_video_frames,
            clock_offset=self.epoch,
            on_first_frame=lambda: ff_stats.append(server_conn.stats.snapshot()),
            on_video_frame=lambda k: frame_snapshots.append(server_conn.stats.snapshot()),
        )

        if self.stream_data_tap is not None:
            data_tap = self.stream_data_tap
            client_on_stream_data = client_conn.on_stream_data

            def _tapped_stream_data(stream_id: int, data: bytes, fin: bool) -> None:
                data_tap(loop.now, stream_id, data, fin)
                if client_on_stream_data is not None:
                    client_on_stream_data(stream_id, data, fin)

            client_conn.on_stream_data = _tapped_stream_data
        if self.hx_qos_tap is not None:
            qos_tap = self.hx_qos_tap
            client_on_hx_qos = client_conn.on_hx_qos

            def _tapped_hx_qos(frame: object) -> None:
                qos_tap(loop.now, frame)
                if client_on_hx_qos is not None:
                    client_on_hx_qos(frame)  # type: ignore[arg-type]

            client_conn.on_hx_qos = _tapped_hx_qos

        client.start()
        return LiveSession(
            conditions=conditions,
            injector=injector,
            path=path,
            server_conn=server_conn,
            client_conn=client_conn,
            server=server,
            client=client,
            ff_stats=ff_stats,
            frame_snapshots=frame_snapshots,
        )

    def _finalize(self, live: "LiveSession", cookie_delivered: bool) -> SessionResult:
        """Snapshot metrics, close the connections, build the result."""
        server_min_rtt = live.server_conn.measured_min_rtt()
        server_max_bw = live.server_conn.measured_max_bw()
        live.server.close()
        live.client_conn.close()

        return SessionResult(
            scheme=self.scheme,
            handshake_mode=self.handshake_mode,
            conditions=live.conditions,
            completed=live.client.done,
            client_metrics=live.client.metrics,
            ff_size_parsed=live.server.state.ff_size,
            initial_params=live.server.state.initial_params,
            ff_server_stats=live.ff_stats[0] if live.ff_stats else None,
            final_server_stats=live.server_conn.stats.snapshot(),
            frame_stats_snapshots=live.frame_snapshots,
            cookie_delivered=cookie_delivered,
            used_cookie=live.server.state.hx_qos is not None,
            server_min_rtt=server_min_rtt,
            server_max_bw=server_max_bw,
            fault_summary=dict(live.injector.counters) if live.injector is not None else None,
        )

    def _run_until_done(self, loop: EventLoop, client: WiraClient) -> None:
        while not client.done and loop.pending_events and loop.now < self.timeout:
            loop.run_until(min(self.timeout, loop.now + 0.25), max_events=100_000)

    @staticmethod
    def _run_until(loop: EventLoop, deadline: float) -> None:
        while loop.pending_events and loop.now < deadline:
            loop.run_until(deadline, max_events=100_000)

"""Per-protocol tag walkers feeding Frame Perception.

Algorithm 1 first obtains ``PtlType`` and rejects unknown protocols, then
walks header/frame units accumulating their on-wire sizes.  Each backend
here turns a raw byte stream into a sequence of :class:`ParsedUnit`
values — ``header`` units (protocol preamble) and ``frame`` units (one
media frame with its container framing) — consuming bytes incrementally,
because on the real sender the stream arrives from the origin in pieces
(corner case 1 of §IV-C exists precisely because of this).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.media import flv, hls, rtmp
from repro.media.frames import MediaFrameType


class PtlType(enum.Enum):
    """Live-streaming protocols the parser recognises (§IV-A)."""

    FLV = "flv"
    RTMP = "rtmp"
    HLS = "hls"


@dataclass(frozen=True)
class ParsedUnit:
    """One unit the parser accounts into FF_Size."""

    kind: str  # "header" or "frame"
    media_type: Optional[MediaFrameType]
    wire_bytes: int

    @property
    def is_video(self) -> bool:
        return self.media_type is not None and self.media_type.is_video


def detect_protocol(prefix: bytes) -> Optional[PtlType]:
    """Identify ``PtlType`` from the first stream bytes.

    Returns ``None`` when more bytes are needed; raises
    :class:`UnknownProtocolError` when the prefix matches nothing in the
    protocol set (Algorithm 1's ``PtlType ∉ PtlSet`` branch).
    """
    if not prefix:
        return None
    if prefix[:1] == b"F":
        if len(prefix) < 3:
            return None
        if prefix[:3] == flv.FLV_SIGNATURE:
            return PtlType.FLV
        raise UnknownProtocolError(prefix[:3])
    if prefix[0] == rtmp.RTMP_VERSION_BYTE:
        return PtlType.RTMP
    if prefix[0] == hls.TS_SYNC_BYTE:
        return PtlType.HLS
    raise UnknownProtocolError(prefix[:1])


class UnknownProtocolError(ValueError):
    """The stream prefix matches no protocol in the parser's PtlSet."""

    def __init__(self, prefix: bytes) -> None:
        super().__init__(f"unknown live-streaming protocol (prefix {prefix!r})")
        self.prefix = prefix


class FlvBackend:
    """Walks FLV headers/tags, reporting on-wire unit sizes."""

    def __init__(self) -> None:
        self._demuxer = flv.FlvDemuxer(expect_header=True)
        self._header_reported = False

    def feed(self, data: bytes) -> List[ParsedUnit]:
        units: List[ParsedUnit] = []
        tags = self._demuxer.feed(data)
        if not self._header_reported and (tags or self._demuxer.tags_parsed):
            units.append(
                ParsedUnit(
                    "header",
                    None,
                    flv.FLV_HEADER_LEN + flv.PREVIOUS_TAG_SIZE_LEN,
                )
            )
            self._header_reported = True
        for tag in tags:
            units.append(ParsedUnit("frame", tag.media_frame_type, tag.on_wire_size))
        return units


class RtmpBackend:
    """Walks RTMP chunk-stream messages."""

    def __init__(self, chunk_size: int = rtmp.DEFAULT_CHUNK_SIZE) -> None:
        self._demuxer = rtmp.RtmpDemuxer(chunk_size=chunk_size, expect_version_byte=True)
        self._header_reported = False
        self.chunk_size = chunk_size

    def feed(self, data: bytes) -> List[ParsedUnit]:
        units: List[ParsedUnit] = []
        messages = self._demuxer.feed(data)
        if not self._header_reported and data:
            units.append(ParsedUnit("header", None, 1))  # C0 version byte
            self._header_reported = True
        for message in messages:
            continuations = max(0, (len(message.payload) - 1) // self.chunk_size)
            wire = 12 + len(message.payload) + continuations
            units.append(ParsedUnit("frame", message.media_frame_type, wire))
        return units


class HlsBackend:
    """Walks MPEG-TS packets; each frame's size is its packets' bytes."""

    def __init__(self) -> None:
        self._demuxer = hls.TsDemuxer()

    def feed(self, data: bytes) -> List[ParsedUnit]:
        return [
            ParsedUnit("frame", frame.media_frame_type, frame.wire_bytes)
            for frame in self._demuxer.feed(data)
        ]


def make_backend(protocol: PtlType):
    """Instantiate the walker for a detected protocol."""
    if protocol == PtlType.FLV:
        return FlvBackend()
    if protocol == PtlType.RTMP:
        return RtmpBackend()
    if protocol == PtlType.HLS:
        return HlsBackend()
    raise ValueError(f"unsupported protocol {protocol!r}")

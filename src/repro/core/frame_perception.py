"""Frame Perception: the cross-layer first-frame parser (§IV-A).

Implements Algorithm 1 of the paper.  The parser sits in L4 on the
sender: live-streaming bytes destined for the client are *also* fed
through :meth:`FrameParser.feed` before transmission, and once the
``Θ_VF``-th video frame is complete the parser reports ``FF_Size`` — the
on-wire size of everything from the protocol header through that video
frame, including script data, audio frames and per-tag framing
(``PreviousTagSize`` in FLV), "because they are also critical for
successfully displaying the first frame on the client side".

Differences from the pseudo-code are cosmetic Pythonisms: where
Algorithm 1 returns ``-1``, :meth:`feed` returns ``None`` (not complete
yet) or raises :class:`UnknownProtocolError` (``PtlType ∉ PtlSet``);
a completed parser keeps returning the final size.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.core.parser_backends import (
    ParsedUnit,
    PtlType,
    UnknownProtocolError,
    detect_protocol,
    make_backend,
)
from repro.media.frames import MediaFrameType


class ParseStatus(enum.Enum):
    DETECTING = "detecting"  # protocol not yet identified
    PARSING = "parsing"  # walking frames, FF not complete
    COMPLETE = "complete"  # FF_Size available


class FrameParser:
    """Incremental Algorithm-1 parser for one live-streaming session.

    Parameters
    ----------
    video_frame_threshold:
        Θ_VF — how many video frames close the first frame (default 1;
        §VII notes clients with richer playback conditions raise it).
    """

    def __init__(self, video_frame_threshold: int = 1) -> None:
        if video_frame_threshold < 1:
            raise ValueError("video frame threshold must be >= 1")
        self.video_frame_threshold = video_frame_threshold
        self.status = ParseStatus.DETECTING
        self.protocol: Optional[PtlType] = None
        self.ff_size: Optional[int] = None
        self.video_frames_seen = 0
        self.bytes_fed = 0
        self._prefix = bytearray()
        self._backend = None
        self._accumulated = 0
        self._units: List[ParsedUnit] = []

    @property
    def ff_complete(self) -> bool:
        """Algorithm 1's ``FF_Complete`` flag."""
        return self.status == ParseStatus.COMPLETE

    def feed(self, data: bytes) -> Optional[int]:
        """Ingest stream bytes; returns FF_Size once it is known.

        Safe to keep feeding after completion (the sender keeps
        transmitting) — the parser ignores further input and returns the
        final FF_Size, mirroring the early ``if FF_Complete`` exit.
        """
        if self.status == ParseStatus.COMPLETE:
            return self.ff_size
        self.bytes_fed += len(data)

        if self.status == ParseStatus.DETECTING:
            self._prefix += data
            protocol = detect_protocol(bytes(self._prefix))
            if protocol is None:
                return None
            self.protocol = protocol
            self._backend = make_backend(protocol)
            data = bytes(self._prefix)
            self._prefix.clear()
            self.status = ParseStatus.PARSING

        assert self._backend is not None
        for unit in self._backend.feed(data):
            self._units.append(unit)
            self._accumulated += unit.wire_bytes
            if unit.kind == "frame" and unit.is_video:
                self.video_frames_seen += 1
                if self.video_frames_seen >= self.video_frame_threshold:
                    self.ff_size = self._accumulated
                    self.status = ParseStatus.COMPLETE
                    return self.ff_size
        return None

    def units(self) -> List[ParsedUnit]:
        """The header/frame units accounted so far (diagnostics)."""
        return list(self._units)

    def breakdown(self) -> dict:
        """FF_Size decomposition by contribution, for reporting."""
        by_kind: dict = {"header": 0}
        for unit in self._units:
            if unit.kind == "header":
                by_kind["header"] += unit.wire_bytes
            else:
                key = unit.media_type.value if unit.media_type else "unknown"
                by_kind[key] = by_kind.get(key, 0) + unit.wire_bytes
        return by_kind

"""Wira: the paper's contribution (§III–§IV).

Three cooperating modules:

* **Frame Perception** (:mod:`repro.core.frame_perception`) — the
  cross-layer L4 parser of Algorithm 1 that identifies the first frame of
  a live stream and measures its size (FF_Size) before it is sent;
* **Transport Cookie** (:mod:`repro.core.transport_cookie`) — the
  stateless client↔cloud scheme that synchronises per-OD-pair historical
  QoS (MinRTT, MaxBW) through ``Hx_QoS`` frames and the CHLO ``HQST``
  tag, sealed with a server-side key (:mod:`repro.core.cookie_crypto`);
* **Initial Parameter Configuration**
  (:mod:`repro.core.initializer`) — Table I's schemes, computing
  ``init_cwnd = min(FF_Size, MaxBW × MinRTT)`` and
  ``init_pacing = MaxBW`` with the paper's two corner cases.
"""

from repro.core.config import WiraConfig
from repro.core.frame_perception import FrameParser, ParseStatus
from repro.core.initializer import (
    InitialParams,
    Scheme,
    compute_initial_params,
    table1_params,
)
from repro.core.schemes import (
    InitContext,
    InitPolicy,
    SchemeDef,
    SchemeSpec,
    as_spec,
    make_policy,
    register,
)
from repro.core.transport_cookie import (
    ClientCookieStore,
    HxQos,
    decode_hqst,
    encode_hqst,
)
from repro.core.cookie_crypto import CookieSealer, CookieError

__all__ = [
    "ClientCookieStore",
    "CookieError",
    "CookieSealer",
    "FrameParser",
    "HxQos",
    "InitContext",
    "InitPolicy",
    "InitialParams",
    "ParseStatus",
    "Scheme",
    "SchemeDef",
    "SchemeSpec",
    "WiraConfig",
    "as_spec",
    "compute_initial_params",
    "decode_hqst",
    "encode_hqst",
    "make_policy",
    "register",
    "table1_params",
]

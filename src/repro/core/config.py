"""Wira configuration knobs (defaults follow the paper)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class WiraConfig:
    """Parameters of the Wira mechanism.

    Defaults match the paper's deployment choices where stated.
    """

    video_frame_threshold: int = 1
    """Θ_VF — video frames ending the "first frame" (§IV-A, default 1)."""

    sync_period: float = 3.0
    """Hx_QoS synchronisation period in seconds (§IV-B: "set to 3s")."""

    staleness_delta: float = 3600.0
    """Δ — cookie age beyond which Hx_QoS is discarded (§IV-C: 60 min)."""

    init_cwnd_exp: int = 42_000
    """Experiential initial cwnd in bytes (corner case 1): "the average
    FF_Size collected from all connections during one week".  The
    paper's fleet average is 43.1 KB (Fig 1(a)); the default here is the
    simulated deployment's own average FF_Size, keeping the A/B-test
    semantics self-consistent."""

    init_rtt_exp: float = 0.050
    """Experiential initial RTT in seconds (corner case 2): the average
    MinRTT across connections during one week, from A/B tests — again
    measured from the simulated deployment itself."""

    min_initial_pacing_bps: float = 100_000.0
    """Safety floor under any computed initial pacing rate."""

    max_initial_cwnd_bytes: int = 2 * 1024 * 1024
    """Safety ceiling on the initial window (anti-amplification-style
    guard against absurd cookie values)."""

    min_initial_cwnd_packets: int = 10
    """Safety floor on the initial window, in packets (RFC 6928's
    standard default).  A corrupt or adversarial FF_Size of a few bytes
    would otherwise initialize a 1-packet window and strangle the
    connection below what any stock kernel would grant; an honest tiny
    first frame loses nothing to the floor (it fits either way)."""

    def __post_init__(self) -> None:
        if self.video_frame_threshold < 1:
            raise ValueError("video_frame_threshold must be >= 1")
        if self.sync_period <= 0:
            raise ValueError("sync_period must be positive")
        if self.staleness_delta <= 0:
            raise ValueError("staleness_delta must be positive")
        if self.init_cwnd_exp <= 0 or self.init_rtt_exp <= 0:
            raise ValueError("experiential defaults must be positive")
        if self.min_initial_cwnd_packets < 1:
            raise ValueError("min_initial_cwnd_packets must be >= 1")

"""Open scheme-plugin registry (the frontier beyond Table I).

The paper's five initialization schemes were originally a closed
``Scheme`` enum hard-matched inside :mod:`repro.core.initializer`.
This module replaces that dispatch with a string-keyed registry so new
schemes plug in without editing the core:

* :class:`SchemeSpec` — a canonical-JSON-serializable scheme reference
  (``name`` plus optional scalar ``params``) that travels through
  ``SessionSpec``, ``FleetConfig``, the robustness matrix, and the serve
  wire's ``WSPC`` tag.  Specs, the legacy ``Scheme`` enum members and
  plain value strings all compare and hash equal when they denote the
  same scheme, so enum-keyed and spec-keyed records interoperate.
* :class:`InitPolicy` — the plugin protocol.  ``initial_params(ctx)``
  computes the connection's initial window/rate from the signals Wira
  gathered; ``observe(result)`` is an optional feedback hook the
  deployment replay calls after every finished session of a chain, which
  is what lets the online per-OD adaptive initializer learn;
  ``quic_config()`` lets a scheme select its transport stack (e.g. a
  BBRv2-style controller or AutoRec-style recovery knobs) with zero
  session-code edits.
* :func:`register` / :func:`as_spec` / :func:`make_policy` — the
  registry surface the engines use.

The five Table I schemes are registered here as stateless policies over
:func:`repro.core.initializer.table1_params`; byte-identical outputs vs
the pre-registry enum path are pinned by
``tests/experiments/test_scheme_parity.py``.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.core.config import WiraConfig
from repro.core.transport_cookie import HxQos

if TYPE_CHECKING:
    from repro.cdn.session import SessionResult
    from repro.core.initializer import InitialParams, Scheme
    from repro.quic.config import QuicConfig

#: Version of the serialized spec layout (``SchemeSpec.to_json``).
SCHEME_SPEC_SCHEMA_VERSION = 1

#: JSON-scalar parameter value.
ParamValue = Union[str, int, float, bool, None]

#: Canonical parameter storage: sorted ``(key, value)`` pairs.
Params = Tuple[Tuple[str, ParamValue], ...]

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _canonical_params(params: object) -> Params:
    """Normalize a params mapping/pair-iterable to the sorted tuple form."""
    if isinstance(params, Mapping):
        items = list(params.items())
    else:
        items = [(k, v) for k, v in params]  # type: ignore[union-attr]
    seen: Dict[str, ParamValue] = {}
    for key, value in items:
        if not isinstance(key, str) or not key:
            raise ValueError(f"scheme param keys must be non-empty strings, got {key!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise ValueError(
                f"scheme param {key!r} must be a JSON scalar, got {type(value).__name__}"
            )
        if key in seen:
            raise ValueError(f"duplicate scheme param {key!r}")
        seen[key] = value
    return tuple(sorted(seen.items()))


@dataclass(frozen=True, eq=False)
class SchemeSpec:
    """A serializable reference to a registered scheme.

    ``value`` is the canonical string form: the bare ``name`` when there
    are no params (byte-identical to the legacy enum values on the wire
    and in every cache/checkpoint key), else ``name?{...}`` with the
    params as canonical JSON.  Equality and hashing go through that
    string so a spec, the matching ``Scheme`` enum member, and the plain
    value string are interchangeable as dict keys.
    """

    name: str
    params: Params = ()

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"invalid scheme name {self.name!r}")
        object.__setattr__(self, "params", _canonical_params(self.params))

    # -- canonical string form --------------------------------------------

    @property
    def value(self) -> str:
        if not self.params:
            return self.name
        blob = json.dumps(dict(self.params), sort_keys=True, separators=(",", ":"))
        return f"{self.name}?{blob}"

    @classmethod
    def parse(cls, text: str) -> "SchemeSpec":
        """Inverse of :attr:`value` (``name`` or ``name?{json params}``)."""
        name, sep, blob = text.partition("?")
        if not sep:
            return cls(name)
        try:
            payload = json.loads(blob)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed scheme params in {text!r}: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError(f"scheme params must be a JSON object, got {blob!r}")
        return cls(name, _canonical_params(payload))

    # -- JSON spec form (schema-versioned) --------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": SCHEME_SPEC_SCHEMA_VERSION,
            "name": self.name,
            "params": dict(self.params),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "SchemeSpec":
        schema = payload.get("schema", SCHEME_SPEC_SCHEMA_VERSION)
        if schema != SCHEME_SPEC_SCHEMA_VERSION:
            raise ValueError(f"unsupported scheme spec schema {schema!r}")
        name = payload.get("name")
        if not isinstance(name, str):
            raise ValueError("scheme spec needs a string 'name'")
        params = payload.get("params", {})
        return cls(name, _canonical_params(params))

    # -- convenience -------------------------------------------------------

    def param(self, key: str, default: ParamValue = None) -> ParamValue:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def with_params(self, **overrides: ParamValue) -> "SchemeSpec":
        merged = dict(self.params)
        merged.update(overrides)
        return SchemeSpec(self.name, _canonical_params(merged))

    @property
    def display_name(self) -> str:
        base = get_def(self.name).display_name
        if not self.params:
            return base
        blob = json.dumps(dict(self.params), sort_keys=True, separators=(",", ":"))
        return f"{base} {blob}"

    @property
    def uses_frame_perception(self) -> bool:
        return get_def(self.name).uses_frame_perception

    @property
    def uses_transport_cookie(self) -> bool:
        return get_def(self.name).uses_transport_cookie

    # -- value equality ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SchemeSpec):
            return self.value == other.value
        if isinstance(other, str):
            return self.value == other
        other_value = getattr(other, "value", None)
        if isinstance(other_value, str) and other.__class__.__module__.startswith("repro."):
            return self.value == other_value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:
        return f"SchemeSpec({self.value!r})"


#: Anything the engines accept where a scheme is expected.
SchemeLike = Union["Scheme", SchemeSpec, str]


@dataclass(frozen=True)
class InitContext:
    """The signals available when initial parameters are computed.

    Mirrors the arguments of the legacy ``compute_initial_params``:
    the deployment config, the parsed ``FF_Size`` (``None`` while the
    parser is still running — corner case 1), the validated ``Hx_QoS``
    cookie (``None`` when absent or stale — corner case 2), and the
    measured handshake RTT for 1-RTT connections.
    """

    config: WiraConfig
    ff_size: Optional[int] = None
    hx_qos: Optional[HxQos] = None
    measured_rtt: Optional[float] = None


class InitPolicy(abc.ABC):
    """One scheme's behaviour: initial parameters plus optional feedback.

    A policy instance lives for one OD pair's session chain.  The
    engines call :meth:`initial_params` (possibly twice per session —
    the provisional corner case) and :meth:`observe` once per finished
    session, in chain order.  ``initial_params`` must be a pure read of
    ``(policy state, ctx)``: only ``observe`` may mutate state, which is
    what keeps the batched wave replay byte-identical to the solo path.
    """

    __slots__ = ("spec", "seed")

    def __init__(self, spec: SchemeSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    @abc.abstractmethod
    def initial_params(self, ctx: InitContext) -> "InitialParams":
        """Table-I-style initial window/rate for one connection."""

    def observe(self, result: "SessionResult") -> None:
        """Feedback hook: one finished session of this policy's chain."""

    def quic_config(self) -> Optional["QuicConfig"]:
        """Transport stack override (CC / recovery), or ``None`` for default."""
        return None

    def state_digest(self) -> str:
        """Hex digest of mutable policy state ('' for stateless policies)."""
        return ""


@dataclass(frozen=True)
class SchemeDef:
    """One registry entry.

    ``factory(spec, seed)`` builds the per-chain policy.  ``headline``
    marks membership in the default evaluation set (the order of
    registration fixes scheme ordering everywhere — figures, fleet
    reports, robustness matrices).
    """

    name: str
    display_name: str
    factory: Callable[[SchemeSpec, int], InitPolicy]
    uses_frame_perception: bool = False
    uses_transport_cookie: bool = False
    headline: bool = False


_REGISTRY: Dict[str, SchemeDef] = {}


def register(defn: SchemeDef, replace: bool = False) -> SchemeDef:
    """Add a scheme to the registry (``replace=True`` to re-register)."""
    SchemeSpec(defn.name)  # validates the name
    if defn.name in _REGISTRY and not replace:
        raise ValueError(f"scheme {defn.name!r} is already registered")
    _REGISTRY[defn.name] = defn
    return defn


def get_def(name: str) -> SchemeDef:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown scheme {name!r} (registered: {known})") from None


def scheme_names() -> Tuple[str, ...]:
    """All registered scheme names, in registration order."""
    return tuple(_REGISTRY)


def eval_schemes() -> Tuple[SchemeSpec, ...]:
    """The headline evaluation set, in registration order."""
    return tuple(SchemeSpec(d.name) for d in _REGISTRY.values() if d.headline)


def as_spec(scheme: SchemeLike) -> SchemeSpec:
    """Normalize a ``Scheme`` member / value string / spec to a spec.

    Raises ``ValueError`` for unknown scheme names, making this the one
    validation point for every external surface (fleet config, serve
    wire, CLIs).
    """
    if isinstance(scheme, SchemeSpec):
        spec = scheme
    elif isinstance(scheme, str):
        spec = SchemeSpec.parse(scheme)
    else:
        value = getattr(scheme, "value", None)
        if not isinstance(value, str):
            raise TypeError(f"not a scheme: {scheme!r}")
        spec = SchemeSpec.parse(value)
    get_def(spec.name)  # validates registration
    return spec


def display_name(scheme: SchemeLike) -> str:
    """Human label for a scheme, from the registry (single source)."""
    return as_spec(scheme).display_name


def make_policy(scheme: SchemeLike, seed: int = 0) -> InitPolicy:
    """Build the per-chain policy instance for a scheme."""
    spec = as_spec(scheme)
    return get_def(spec.name).factory(spec, seed)


# ---------------------------------------------------------------------------
# Built-in policies
# ---------------------------------------------------------------------------


class TableIPolicy(InitPolicy):
    """A stateless Table I scheme, optionally with a transport override.

    ``base`` names the Table I row to compute (§IV-C); ``transport``
    holds default transport params (cc name, recovery knobs) that spec
    params may override.  The five paper schemes use this directly; the
    BBRv2 and AutoRec frontier schemes are Wira's Table I row composed
    with a non-default transport stack.
    """

    __slots__ = ("base", "transport")

    def __init__(
        self,
        spec: SchemeSpec,
        seed: int = 0,
        base: Optional[str] = None,
        transport: Params = (),
    ) -> None:
        super().__init__(spec, seed)
        self.base = base if base is not None else spec.name
        merged = dict(transport)
        merged.update(dict(spec.params))
        self.transport = tuple(sorted(merged.items()))

    def initial_params(self, ctx: InitContext) -> "InitialParams":
        from repro.core.initializer import table1_params

        return table1_params(
            self.base,
            ctx.config,
            ff_size=ctx.ff_size,
            hx_qos=ctx.hx_qos,
            measured_rtt=ctx.measured_rtt,
        )

    def quic_config(self) -> Optional["QuicConfig"]:
        return transport_quic_config(self.transport)


#: Transport params understood by :func:`transport_quic_config`.  A
#: ``cc.<key>`` param becomes a keyword argument of the controller.
_TRANSPORT_KEYS = ("cc", "loss_packet_threshold", "loss_time_factor", "pto_probe_count", "pto_backoff")


def transport_quic_config(
    params: Union[Params, Mapping[str, ParamValue]]
) -> Optional["QuicConfig"]:
    """Build the ``QuicConfig`` a scheme's transport params call for.

    Accepts either a ``(key, value)`` pair tuple or a mapping.  Returns
    ``None`` when no transport param is present, so schemes without an
    override keep the exact legacy default-config path.
    """
    pairs = params.items() if isinstance(params, Mapping) else params
    relevant = {
        k: v for k, v in pairs if k in _TRANSPORT_KEYS or k.startswith("cc.")
    }
    if not relevant:
        return None
    from repro.quic.config import QuicConfig

    kwargs: Dict[str, object] = {}
    cc_params: Dict[str, float] = {}
    for key, value in relevant.items():
        if key == "cc":
            kwargs["congestion_controller"] = str(value)
        elif key.startswith("cc."):
            cc_params[key[3:]] = float(value)  # type: ignore[arg-type]
        elif key == "loss_packet_threshold":
            kwargs[key] = int(value)  # type: ignore[call-overload]
        else:
            kwargs[key] = float(value)  # type: ignore[arg-type]
    if cc_params:
        kwargs["cc_params"] = tuple(sorted(cc_params.items()))
    return QuicConfig(**kwargs)  # type: ignore[arg-type]


def _table1_factory(spec: SchemeSpec, seed: int) -> InitPolicy:
    return TableIPolicy(spec, seed)


def _wira_bbr2_factory(spec: SchemeSpec, seed: int) -> InitPolicy:
    return TableIPolicy(spec, seed, base="wira", transport=(("cc", "bbrv2"),))


#: AutoRec-style accelerated recovery: earlier time/packet loss
#: declaration, more PTO probes, gentler backoff.  First-frame tails
#: under loss are recovery-bound, not window-bound.
AUTOREC_TRANSPORT: Params = (
    ("loss_packet_threshold", 2),
    ("loss_time_factor", 1.0),
    ("pto_backoff", 1.5),
    ("pto_probe_count", 4),
)


def _wira_ar_factory(spec: SchemeSpec, seed: int) -> InitPolicy:
    return TableIPolicy(spec, seed, base="wira", transport=AUTOREC_TRANSPORT)


def _adaptive_factory(spec: SchemeSpec, seed: int) -> InitPolicy:
    from repro.core.adaptive import AdaptiveInitPolicy

    return AdaptiveInitPolicy(spec, seed)


def _register_builtins() -> None:
    register(SchemeDef("baseline", "Baseline", _table1_factory, headline=True))
    register(
        SchemeDef(
            "wira_ff",
            "Wira(FF)",
            _table1_factory,
            uses_frame_perception=True,
            headline=True,
        )
    )
    register(
        SchemeDef(
            "wira_hx",
            "Wira(Hx)",
            _table1_factory,
            uses_transport_cookie=True,
            headline=True,
        )
    )
    register(
        SchemeDef(
            "wira",
            "Wira",
            _table1_factory,
            uses_frame_perception=True,
            uses_transport_cookie=True,
            headline=True,
        )
    )
    register(SchemeDef("static_10", "init_cwnd=10", _table1_factory))
    # -- frontier schemes (ROADMAP item 3) --------------------------------
    register(
        SchemeDef(
            "adaptive",
            "Adaptive(OD)",
            _adaptive_factory,
            uses_frame_perception=True,
            uses_transport_cookie=True,
        )
    )
    register(
        SchemeDef(
            "wira_bbr2",
            "Wira+BBRv2",
            _wira_bbr2_factory,
            uses_frame_perception=True,
            uses_transport_cookie=True,
        )
    )
    register(
        SchemeDef(
            "wira_ar",
            "Wira+AutoRec",
            _wira_ar_factory,
            uses_frame_perception=True,
            uses_transport_cookie=True,
        )
    )


_register_builtins()

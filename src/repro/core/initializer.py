"""Initial parameter configuration (§IV-C, Table I).

Given the transport signals Wira gathered — the parsed ``FF_Size``
(§IV-A) and the validated ``Hx_QoS`` cookie (§IV-B) — compute the
connection's initial congestion window and pacing rate per scheme:

==========  =========================  ==========================
Scheme      init_cwnd                  init_pacing
==========  =========================  ==========================
BASELINE    init_cwnd_exp              init_cwnd / init_RTT
WIRA_FF     FF_Size                    init_cwnd / init_RTT
WIRA_HX     BDP = MaxBW × MinRTT       MaxBW
WIRA        min{FF_Size, BDP}          MaxBW
STATIC_10   10 packets (RFC 6928)      init_cwnd / init_RTT
==========  =========================  ==========================

``init_RTT`` is the *measured* handshake RTT when the connection took
the 1-RTT path (§VI: "the server measures the accurate RTT and uses it,
instead of the configured initial RTT") and ``init_RTT_exp`` otherwise.
Likewise the BDP uses the measured RTT when available.

Corner cases (§IV-C) are handled exactly as described:

1. **FF_Size not yet parsed** — substitute ``init_cwnd_exp``; the
   connection later re-initializes once the parser completes ("the
   init_cwnd will be updated to the minimum value of FF_Size and BDP").
2. **Cookie stale or absent** (T > Δ) — ``init_cwnd = FF_Size`` and
   ``init_pacing = FF_Size / init_RTT_exp``.

Scheme *dispatch* lives in :mod:`repro.core.schemes`: every scheme is a
registered :class:`~repro.core.schemes.InitPolicy`, and the five Table I
rows are stateless policies over :func:`table1_params` below.  The
:class:`Scheme` enum and :func:`compute_initial_params` survive only as
deprecated aliases for the registry API.
"""

from __future__ import annotations

import enum
import math
import warnings
from dataclasses import dataclass
from typing import Optional

from repro.core.config import WiraConfig
from repro.core.transport_cookie import HxQos

_PACKET_BYTES = 1252  # MSS used when a scheme is expressed in packets
_PACKET_WIRE_BYTES = 1252 + 28  # MSS + IPv4/UDP framing on the wire
_PACKET_PAYLOAD_BYTES = 1252 - 40  # stream payload per packet after headers


def payload_to_wire_bytes(payload_bytes: int) -> int:
    """Window bytes needed to admit ``payload_bytes`` of stream data.

    cwnd (like the BDP) is accounted in *wire* bytes; FF_Size is a
    *stream payload* size.  The paper's window values are in packets
    (Fig 2(a): ``init_cwnd = 45`` for a 66 KB first frame ≈ FF/MSS), so
    framing is naturally included there — without this conversion an
    ``init_cwnd = FF_Size`` window is a few packets short and the first
    frame's tail stalls one extra RTT on every small-FF stream.
    """
    packets = max(1, math.ceil(payload_bytes / _PACKET_PAYLOAD_BYTES))
    return packets * _PACKET_WIRE_BYTES


class Scheme(enum.Enum):
    """Deprecated alias for the scheme registry (:mod:`repro.core.schemes`).

    The five Table I members survive for compatibility; they compare and
    hash equal to the matching :class:`~repro.core.schemes.SchemeSpec`,
    so enum-keyed and spec-keyed records interoperate.  New schemes are
    *not* added here — register a :class:`~repro.core.schemes.SchemeDef`
    instead.
    """

    BASELINE = "baseline"
    WIRA_FF = "wira_ff"
    WIRA_HX = "wira_hx"
    WIRA = "wira"
    STATIC_10 = "static_10"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Scheme):
            return self is other
        from repro.core.schemes import SchemeSpec

        if isinstance(other, SchemeSpec):
            return self._value_ == other.value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value_)

    @property
    def uses_frame_perception(self) -> bool:
        from repro.core import schemes as _schemes

        return _schemes.get_def(str(self._value_)).uses_frame_perception

    @property
    def uses_transport_cookie(self) -> bool:
        from repro.core import schemes as _schemes

        return _schemes.get_def(str(self._value_)).uses_transport_cookie

    @property
    def display_name(self) -> str:
        from repro.core import schemes as _schemes

        return _schemes.get_def(str(self._value_)).display_name


@dataclass(frozen=True)
class InitialParams:
    """The values handed to the congestion controller before data flows."""

    cwnd_bytes: int
    pacing_bps: float
    used_ff_size: bool  # FF_Size informed the window
    used_hx_qos: bool  # a valid cookie informed the rate/BDP
    provisional: bool  # corner case 1: awaiting FF_Size, will be recomputed

    def __post_init__(self) -> None:
        if self.cwnd_bytes <= 0 or self.pacing_bps <= 0:
            raise ValueError("initial parameters must be positive")


def table1_params(
    name: str,
    config: WiraConfig,
    ff_size: Optional[int] = None,
    hx_qos: Optional[HxQos] = None,
    measured_rtt: Optional[float] = None,
) -> InitialParams:
    """Table I + corner cases, keyed by scheme name.

    This is the pure math the five built-in policies share
    (:class:`repro.core.schemes.TableIPolicy`); plugin policies may call
    it for their fallback rows.

    Parameters
    ----------
    name:
        Which Table I row to compute (a legacy scheme value string).
    config:
        Wira deployment knobs (experiential values, safety bounds).
    ff_size:
        Parsed FF_Size in bytes; ``None`` triggers corner case 1 for the
        FF-aware schemes.
    hx_qos:
        Validated (authentic, fresh) cookie; ``None`` triggers corner
        case 2 for the cookie-aware schemes.  Staleness is the cookie
        manager's job — a stale cookie must be passed as ``None``.
    measured_rtt:
        Handshake RTT sample for 1-RTT connections.
    """
    init_rtt = measured_rtt if measured_rtt is not None else config.init_rtt_exp
    bdp = None
    if hx_qos is not None:
        rtt_for_bdp = measured_rtt if measured_rtt is not None else hx_qos.min_rtt
        bdp = max(_PACKET_WIRE_BYTES, int(hx_qos.max_bw_bps * rtt_for_bdp / 8.0))
    # FF_Size and init_cwnd_exp are stream-payload sizes; windows are
    # accounted in wire bytes.
    ff_wire = payload_to_wire_bytes(ff_size) if ff_size is not None else None
    exp_wire = payload_to_wire_bytes(config.init_cwnd_exp)

    if name == "static_10":
        cwnd = 10 * _PACKET_WIRE_BYTES
        return finalize_params(config, cwnd, cwnd * 8.0 / init_rtt, False, False, False)

    if name == "baseline":
        cwnd = exp_wire
        return finalize_params(config, cwnd, cwnd * 8.0 / init_rtt, False, False, False)

    if name == "wira_ff":
        provisional = ff_wire is None
        cwnd = ff_wire if ff_wire is not None else exp_wire
        return finalize_params(
            config, cwnd, cwnd * 8.0 / init_rtt, not provisional, False, provisional
        )

    if name == "wira_hx":
        if hx_qos is None:
            # No valid cookie: fall back to the experiential baseline.
            return finalize_params(config, exp_wire, exp_wire * 8.0 / init_rtt, False, False, False)
        assert bdp is not None
        return finalize_params(config, bdp, hx_qos.max_bw_bps, False, True, False)

    if name == "wira":
        if hx_qos is None:
            # Corner case 2: T > Δ (or no cookie at all).
            if ff_wire is None:
                # Both signals missing: behave like the baseline until
                # the parser completes (corner cases compose).
                return finalize_params(config, exp_wire, exp_wire * 8.0 / init_rtt, False, False, True)
            pacing = ff_wire * 8.0 / config.init_rtt_exp
            return finalize_params(config, ff_wire, pacing, True, False, False)
        assert bdp is not None
        if ff_wire is None:
            # Corner case 1: init_cwnd_exp stands in for FF_Size.
            cwnd = min(exp_wire, bdp)
            return finalize_params(config, cwnd, hx_qos.max_bw_bps, False, True, True)
        cwnd = min(ff_wire, bdp)  # Eq. 3
        return finalize_params(config, cwnd, hx_qos.max_bw_bps, True, True, False)  # Eq. 2

    raise ValueError(f"no Table I row for scheme {name!r}")


def compute_initial_params(
    scheme: "Scheme",
    config: WiraConfig,
    ff_size: Optional[int] = None,
    hx_qos: Optional[HxQos] = None,
    measured_rtt: Optional[float] = None,
) -> InitialParams:
    """Deprecated enum dispatch; resolves through the scheme registry."""
    warnings.warn(
        "compute_initial_params() is deprecated; build a policy via "
        "repro.core.schemes.make_policy(spec) and call "
        "policy.initial_params(InitContext(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.schemes import InitContext, make_policy

    policy = make_policy(scheme)
    return policy.initial_params(
        InitContext(config=config, ff_size=ff_size, hx_qos=hx_qos, measured_rtt=measured_rtt)
    )


def finalize_params(
    config: WiraConfig,
    cwnd: int,
    pacing: float,
    used_ff: bool,
    used_hx: bool,
    provisional: bool,
) -> InitialParams:
    """Apply the deployment safety bounds (every policy must end here)."""
    floor = config.min_initial_cwnd_packets * _PACKET_WIRE_BYTES
    cwnd = max(floor, min(int(cwnd), config.max_initial_cwnd_bytes))
    pacing = max(config.min_initial_pacing_bps, float(pacing))
    return InitialParams(cwnd, pacing, used_ff, used_hx, provisional)


#: Backwards-compatible private alias (pre-registry name).
_finalize = finalize_params

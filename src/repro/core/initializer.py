"""Initial parameter configuration (§IV-C, Table I).

Given the transport signals Wira gathered — the parsed ``FF_Size``
(§IV-A) and the validated ``Hx_QoS`` cookie (§IV-B) — compute the
connection's initial congestion window and pacing rate per scheme:

==========  =========================  ==========================
Scheme      init_cwnd                  init_pacing
==========  =========================  ==========================
BASELINE    init_cwnd_exp              init_cwnd / init_RTT
WIRA_FF     FF_Size                    init_cwnd / init_RTT
WIRA_HX     BDP = MaxBW × MinRTT       MaxBW
WIRA        min{FF_Size, BDP}          MaxBW
STATIC_10   10 packets (RFC 6928)      init_cwnd / init_RTT
==========  =========================  ==========================

``init_RTT`` is the *measured* handshake RTT when the connection took
the 1-RTT path (§VI: "the server measures the accurate RTT and uses it,
instead of the configured initial RTT") and ``init_RTT_exp`` otherwise.
Likewise the BDP uses the measured RTT when available.

Corner cases (§IV-C) are handled exactly as described:

1. **FF_Size not yet parsed** — substitute ``init_cwnd_exp``; the
   connection later calls :func:`compute_initial_params` again once the
   parser completes ("the init_cwnd will be updated to the minimum
   value of FF_Size and BDP").
2. **Cookie stale or absent** (T > Δ) — ``init_cwnd = FF_Size`` and
   ``init_pacing = FF_Size / init_RTT_exp``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from repro.core.config import WiraConfig
from repro.core.transport_cookie import HxQos

_PACKET_BYTES = 1252  # MSS used when a scheme is expressed in packets
_PACKET_WIRE_BYTES = 1252 + 28  # MSS + IPv4/UDP framing on the wire
_PACKET_PAYLOAD_BYTES = 1252 - 40  # stream payload per packet after headers


def payload_to_wire_bytes(payload_bytes: int) -> int:
    """Window bytes needed to admit ``payload_bytes`` of stream data.

    cwnd (like the BDP) is accounted in *wire* bytes; FF_Size is a
    *stream payload* size.  The paper's window values are in packets
    (Fig 2(a): ``init_cwnd = 45`` for a 66 KB first frame ≈ FF/MSS), so
    framing is naturally included there — without this conversion an
    ``init_cwnd = FF_Size`` window is a few packets short and the first
    frame's tail stalls one extra RTT on every small-FF stream.
    """
    packets = max(1, math.ceil(payload_bytes / _PACKET_PAYLOAD_BYTES))
    return packets * _PACKET_WIRE_BYTES


class Scheme(enum.Enum):
    """Comparison schemes of §VI (Table I) plus the RFC 6928 static."""

    BASELINE = "baseline"
    WIRA_FF = "wira_ff"
    WIRA_HX = "wira_hx"
    WIRA = "wira"
    STATIC_10 = "static_10"

    @property
    def uses_frame_perception(self) -> bool:
        return self in (Scheme.WIRA_FF, Scheme.WIRA)

    @property
    def uses_transport_cookie(self) -> bool:
        return self in (Scheme.WIRA_HX, Scheme.WIRA)

    @property
    def display_name(self) -> str:
        return {
            Scheme.BASELINE: "Baseline",
            Scheme.WIRA_FF: "Wira(FF)",
            Scheme.WIRA_HX: "Wira(Hx)",
            Scheme.WIRA: "Wira",
            Scheme.STATIC_10: "init_cwnd=10",
        }[self]


@dataclass(frozen=True)
class InitialParams:
    """The values handed to the congestion controller before data flows."""

    cwnd_bytes: int
    pacing_bps: float
    used_ff_size: bool  # FF_Size informed the window
    used_hx_qos: bool  # a valid cookie informed the rate/BDP
    provisional: bool  # corner case 1: awaiting FF_Size, will be recomputed

    def __post_init__(self) -> None:
        if self.cwnd_bytes <= 0 or self.pacing_bps <= 0:
            raise ValueError("initial parameters must be positive")


def compute_initial_params(
    scheme: Scheme,
    config: WiraConfig,
    ff_size: Optional[int] = None,
    hx_qos: Optional[HxQos] = None,
    measured_rtt: Optional[float] = None,
) -> InitialParams:
    """Table I + corner cases.

    Parameters
    ----------
    scheme:
        Which comparison scheme to configure.
    config:
        Wira deployment knobs (experiential values, safety bounds).
    ff_size:
        Parsed FF_Size in bytes; ``None`` triggers corner case 1 for the
        FF-aware schemes.
    hx_qos:
        Validated (authentic, fresh) cookie; ``None`` triggers corner
        case 2 for the cookie-aware schemes.  Staleness is the cookie
        manager's job — a stale cookie must be passed as ``None``.
    measured_rtt:
        Handshake RTT sample for 1-RTT connections.
    """
    init_rtt = measured_rtt if measured_rtt is not None else config.init_rtt_exp
    bdp = None
    if hx_qos is not None:
        rtt_for_bdp = measured_rtt if measured_rtt is not None else hx_qos.min_rtt
        bdp = max(_PACKET_WIRE_BYTES, int(hx_qos.max_bw_bps * rtt_for_bdp / 8.0))
    # FF_Size and init_cwnd_exp are stream-payload sizes; windows are
    # accounted in wire bytes.
    ff_wire = payload_to_wire_bytes(ff_size) if ff_size is not None else None
    exp_wire = payload_to_wire_bytes(config.init_cwnd_exp)

    if scheme == Scheme.STATIC_10:
        cwnd = 10 * _PACKET_WIRE_BYTES
        return _finalize(config, cwnd, cwnd * 8.0 / init_rtt, False, False, False)

    if scheme == Scheme.BASELINE:
        cwnd = exp_wire
        return _finalize(config, cwnd, cwnd * 8.0 / init_rtt, False, False, False)

    if scheme == Scheme.WIRA_FF:
        provisional = ff_wire is None
        cwnd = ff_wire if ff_wire is not None else exp_wire
        return _finalize(
            config, cwnd, cwnd * 8.0 / init_rtt, not provisional, False, provisional
        )

    if scheme == Scheme.WIRA_HX:
        if hx_qos is None:
            # No valid cookie: fall back to the experiential baseline.
            return _finalize(config, exp_wire, exp_wire * 8.0 / init_rtt, False, False, False)
        assert bdp is not None
        return _finalize(config, bdp, hx_qos.max_bw_bps, False, True, False)

    if scheme == Scheme.WIRA:
        if hx_qos is None:
            # Corner case 2: T > Δ (or no cookie at all).
            if ff_wire is None:
                # Both signals missing: behave like the baseline until
                # the parser completes (corner cases compose).
                return _finalize(config, exp_wire, exp_wire * 8.0 / init_rtt, False, False, True)
            pacing = ff_wire * 8.0 / config.init_rtt_exp
            return _finalize(config, ff_wire, pacing, True, False, False)
        assert bdp is not None
        if ff_wire is None:
            # Corner case 1: init_cwnd_exp stands in for FF_Size.
            cwnd = min(exp_wire, bdp)
            return _finalize(config, cwnd, hx_qos.max_bw_bps, False, True, True)
        cwnd = min(ff_wire, bdp)  # Eq. 3
        return _finalize(config, cwnd, hx_qos.max_bw_bps, True, True, False)  # Eq. 2

    raise ValueError(f"unknown scheme {scheme!r}")


def _finalize(
    config: WiraConfig,
    cwnd: int,
    pacing: float,
    used_ff: bool,
    used_hx: bool,
    provisional: bool,
) -> InitialParams:
    """Apply the deployment safety bounds."""
    floor = config.min_initial_cwnd_packets * _PACKET_WIRE_BYTES
    cwnd = max(floor, min(int(cwnd), config.max_initial_cwnd_bytes))
    pacing = max(config.min_initial_pacing_bps, float(pacing))
    return InitialParams(cwnd, pacing, used_ff, used_hx, provisional)

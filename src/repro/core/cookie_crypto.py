"""Server-side sealing of transport cookies (§IV-B, §VII).

The paper encrypts the ``Hx_QoS_Frame`` with a sender-side symmetric key
so clients cannot read, fabricate or replay-modify cookie contents:
"each client cannot understand its received transport cookies that can
not be easily fabricated".  The standard library offers no AEAD cipher,
so this module builds an authenticated stream cipher from primitives it
does have — an HMAC-SHA256 keystream in counter mode plus an
encrypt-then-MAC tag.  The construction provides exactly the properties
§VII relies on:

* **confidentiality** — clients see uniformly pseudorandom bytes;
* **integrity/authenticity** — any bit flip or forgery fails the MAC,
  so "the servers verify the consistency between the sent and received
  Hx_QoS and then leverage the authentic values";
* **freshness** — the sealed payload embeds the server timestamp used
  by the Δ-staleness check (corner case 2).

This is a documented substitution (DESIGN.md): a deployment would use
AES-GCM; the security argument the evaluation depends on is unchanged.
"""

from __future__ import annotations

import hashlib
import hmac
import struct

_NONCE_LEN = 12
_MAC_LEN = 16
_BLOCK = 32  # SHA-256 output size


class CookieError(ValueError):
    """Raised when a sealed cookie fails authentication or parsing."""


class CookieSealer:
    """Seals/opens opaque cookie blobs with a server-held key.

    The server is stateless across connections; only the key persists.
    Each ``seal`` must be given a unique nonce — the cookie manager
    derives it from a per-server counter.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("cookie key must be at least 16 bytes")
        self._enc_key = hmac.new(key, b"wira-enc", hashlib.sha256).digest()
        self._mac_key = hmac.new(key, b"wira-mac", hashlib.sha256).digest()

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            block = hmac.new(
                self._enc_key, nonce + struct.pack(">I", counter), hashlib.sha256
            ).digest()
            out += block
            counter += 1
        return bytes(out[:length])

    def seal(self, plaintext: bytes, nonce_seed: int, salt: bytes = b"") -> bytes:
        """Encrypt-then-MAC ``plaintext``; returns the opaque blob.

        ``salt`` namespaces the nonce sequence.  Two sealers holding the
        same key but different salts derive disjoint nonces even when
        their ``nonce_seed`` counters collide — the property that keeps
        N shard processes sharing one deployment key from reusing a
        keystream (a two-time pad).  The salt is folded into the nonce
        *derivation* only; the blob layout is unchanged and ``open``
        needs no salt, so sealed cookies stay openable cross-shard.
        """
        nonce = hashlib.sha256(
            salt + struct.pack(">Q", nonce_seed) + b"wira-nonce"
        ).digest()[:_NONCE_LEN]
        keystream = self._keystream(nonce, len(plaintext))
        ciphertext = bytes(p ^ k for p, k in zip(plaintext, keystream))
        mac = hmac.new(self._mac_key, nonce + ciphertext, hashlib.sha256).digest()[:_MAC_LEN]
        return nonce + ciphertext + mac

    def open(self, blob: bytes) -> bytes:
        """Verify and decrypt a sealed blob.

        Raises :class:`CookieError` on truncation, tampering or forgery —
        the server then falls back to cookie-less initialisation rather
        than trusting attacker-controlled QoS values.
        """
        if len(blob) < _NONCE_LEN + _MAC_LEN:
            raise CookieError("sealed cookie too short")
        nonce = blob[:_NONCE_LEN]
        ciphertext = blob[_NONCE_LEN : -_MAC_LEN]
        mac = blob[-_MAC_LEN:]
        expected = hmac.new(self._mac_key, nonce + ciphertext, hashlib.sha256).digest()[
            :_MAC_LEN
        ]
        if not hmac.compare_digest(mac, expected):
            raise CookieError("cookie authentication failed")
        keystream = self._keystream(nonce, len(ciphertext))
        return bytes(c ^ k for c, k in zip(ciphertext, keystream))

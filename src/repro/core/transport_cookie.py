"""Transport Cookie: stateless Hx_QoS synchronisation (§IV-B).

Wire pieces (Fig 8):

* **HQST tag** in the CHLO — declares whether the client supports
  Hx_QoS synchronisation (``Bool``) and, when it has one, echoes the
  cookie from the previous session with the same OD pair: the client's
  receive timestamp plus the server-sealed ``Hx_QoS_Frame`` blob.
* **Hx_QoS frame** in Hx_QoS packets (type ``0x1f``,
  :class:`repro.quic.frames.HxQosFrame`) — the server periodically
  pushes its current MinRTT/MaxBW measurements, sealed, to the client.

Server side, :class:`ServerCookieManager` builds sealed cookies from a
connection's live measurements and opens echoed ones, enforcing the MAC
and the Δ-staleness rule.  Client side, :class:`ClientCookieStore` keeps
the latest blob per origin, exactly the "offload the collected Hx_QoS to
the cache of its clients" storage shift the paper argues for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.cookie_crypto import CookieError, CookieSealer
from repro.quic.frames import HxId, HxQosFrame
from repro.quic.varint import decode_varint, encode_varint


@dataclass(frozen=True)
class HxQos:
    """Historical QoS of one OD pair (the cookie payload)."""

    min_rtt: float  # seconds
    max_bw_bps: float  # bits per second
    timestamp: float  # server clock at measurement, seconds

    def __post_init__(self) -> None:
        if self.min_rtt <= 0:
            raise ValueError("min_rtt must be positive")
        if self.max_bw_bps <= 0:
            raise ValueError("max_bw_bps must be positive")

    @property
    def bdp_bytes(self) -> int:
        """Bandwidth-delay product implied by the historical metrics."""
        return int(self.max_bw_bps * self.min_rtt / 8.0)

    def encode(self) -> bytes:
        out = bytearray()
        out += encode_varint(max(1, int(self.min_rtt * 1e6)))
        out += encode_varint(max(1, int(self.max_bw_bps)))
        out += encode_varint(max(0, int(self.timestamp * 1e3)))
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "HxQos":
        try:
            min_rtt_us, offset = decode_varint(data)
            max_bw, offset = decode_varint(data, offset)
            timestamp_ms, offset = decode_varint(data, offset)
        except ValueError as exc:
            raise CookieError(f"malformed Hx_QoS payload: {exc}") from exc
        if offset != len(data):
            # Strict parse: a sealed payload is exactly three varints.
            # Trailing bytes mean corruption the MAC did not cover the
            # intent of — reject rather than silently ignore.
            raise CookieError(
                f"trailing garbage after Hx_QoS payload ({len(data) - offset} bytes)"
            )
        return cls(min_rtt_us / 1e6, float(max_bw), timestamp_ms / 1e3)


# ----------------------------------------------------------------------
# HQST tag codec (CHLO side, Fig 8)


def encode_hqst(
    supported: bool,
    received_at_ms: Optional[int] = None,
    sealed_frame: Optional[bytes] = None,
) -> bytes:
    """Encode the HQST tag value.

    ``Bool`` leads; when the client holds a cookie, the timestamp it
    recorded at receipt and the sealed Hx_QoS frame follow.  Per §IV-B,
    "the Hx_QoS_Frame will keep available only when Bool = 1 and the
    TagLen is larger than the sum of sizes of TagID, TagLen and Bool".
    """
    if received_at_ms is not None and sealed_frame is None:
        # A timestamp describes when a sealed frame arrived; one without
        # the other is a caller bug.  Silently emitting the bare Bool
        # here used to hide exactly that bug (the receipt time vanished
        # from the wire with no error).
        raise ValueError("received_at_ms given without sealed_frame")
    out = bytearray([0x01 if supported else 0x00])
    if supported and sealed_frame is not None:
        out += encode_varint(received_at_ms if received_at_ms is not None else 0)
        out += encode_varint(len(sealed_frame))
        out += sealed_frame
    return bytes(out)


def decode_hqst(value: bytes) -> Tuple[bool, Optional[int], Optional[bytes]]:
    """Decode an HQST tag value → (supported, received_at_ms, sealed).

    Parsing is strict: the Bool must be exactly 0x00 or 0x01 (anything
    else is a corrupted tag, not an "unsupported" client), and nothing
    may follow the sealed frame.  Misreading corruption as a benign
    shape would hide injected faults instead of detecting them.
    """
    if not value:
        return False, None, None
    if value[0] not in (0x00, 0x01):
        raise CookieError(f"invalid HQST Bool byte 0x{value[0]:02x}")
    supported = value[0] == 0x01
    if not supported:
        if len(value) > 1:
            raise CookieError("trailing garbage after unsupported HQST Bool")
        return False, None, None
    if len(value) == 1:
        return True, None, None
    try:
        received_at_ms, offset = decode_varint(value, 1)
        length, offset = decode_varint(value, offset)
    except ValueError as exc:
        raise CookieError(f"malformed HQST tag: {exc}") from exc
    if offset + length > len(value):
        raise CookieError("HQST sealed frame truncated")
    if offset + length < len(value):
        raise CookieError("trailing garbage after HQST sealed frame")
    return supported, received_at_ms, bytes(value[offset : offset + length])


# ----------------------------------------------------------------------
# Client side


class ClientCookieStore:
    """Per-client cache of the latest cookie for each origin.

    The client cannot read the sealed blobs; it only stores and echoes
    them, recording when each arrived (the timestamp "carried in the
    next CHLO packets").

    The cache is bounded: ``max_entries`` caps the number of origins and
    ``ttl`` expires entries whose receipt time has aged out.  Eviction is
    deterministic and insertion-ordered — Python dicts preserve insertion
    order, :meth:`update` re-inserts an origin on refresh (moving it to
    the back), and capacity pressure always evicts the front.  Long-lived
    serve clients and million-session campaigns therefore hold bounded
    RSS regardless of how many origins they touch.  Both knobs default to
    ``None`` (unbounded), preserving the historical behaviour.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        ttl: Optional[float] = None,
        on_evict: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive")
        self._cookies: Dict[str, Tuple[bytes, float]] = {}
        self.max_entries = max_entries
        self.ttl = ttl
        self.evicted_capacity = 0
        self.evicted_ttl = 0
        self._on_evict = on_evict

    @property
    def evictions(self) -> int:
        """Total entries dropped by capacity or TTL pressure."""
        return self.evicted_capacity + self.evicted_ttl

    def set_on_evict(self, callback: Optional[Callable[[str, str], None]]) -> None:
        """Install the eviction observer ``(origin, reason) -> None``.

        ``reason`` is ``"capacity"`` or ``"ttl"``.  A store outlives any
        one session, so each new session's client re-points this at its
        own trace scope.
        """
        self._on_evict = callback

    def _evict(self, origin: str, reason: str) -> None:
        del self._cookies[origin]
        if reason == "ttl":
            self.evicted_ttl += 1
        else:
            self.evicted_capacity += 1
        if self._on_evict is not None:
            self._on_evict(origin, reason)

    def _expire(self, now: float) -> None:
        if self.ttl is None:
            return
        # Insertion order is not receipt order after refreshes, so scan
        # the whole dict; expired origins are removed oldest-insertion
        # first, which keeps the eviction *sequence* deterministic.
        for origin in [
            o for o, (_, received_at) in self._cookies.items()
            if now - received_at > self.ttl
        ]:
            self._evict(origin, "ttl")

    def update(self, origin: str, sealed: bytes, received_at: float) -> None:
        self._expire(received_at)
        # Refresh recency: re-insert so the origin moves to the back of
        # the insertion order and is evicted last under capacity.
        self._cookies.pop(origin, None)
        self._cookies[origin] = (sealed, received_at)
        if self.max_entries is not None:
            while len(self._cookies) > self.max_entries:
                self._evict(next(iter(self._cookies)), "capacity")

    def get(self, origin: str, now: Optional[float] = None) -> Optional[Tuple[bytes, float]]:
        """Latest ``(sealed_blob, received_at)`` for ``origin``.

        Passing ``now`` applies TTL expiry before the lookup, so a
        stale cookie is never echoed even between updates.
        """
        if now is not None:
            self._expire(now)
        return self._cookies.get(origin)

    def forget(self, origin: str) -> None:
        self._cookies.pop(origin, None)

    def __len__(self) -> int:
        return len(self._cookies)

    def origins(self) -> Tuple[str, ...]:
        """Cached origins in current insertion (eviction) order."""
        return tuple(self._cookies)

    def on_hx_qos_frame(self, origin: str, frame: HxQosFrame, now: float) -> bool:
        """Ingest a pushed Hx_QoS frame; returns True if a cookie landed."""
        metrics = frame.decoded_metrics()
        sealed = metrics.get("sealed")
        if sealed is None:
            return False
        self.update(origin, sealed, now)
        return True


# ----------------------------------------------------------------------
# Server side


class ServerCookieManager:
    """Builds and validates sealed cookies; holds only the key.

    Statelessness is the design point: nothing per-OD-pair is retained
    between connections — every :meth:`open_echoed` works purely from
    the client-supplied blob.
    """

    def __init__(
        self,
        key: bytes,
        staleness_delta: float = 3600.0,
        max_clock_skew: float = 5.0,
        instance_salt: bytes = b"",
    ) -> None:
        self._sealer = CookieSealer(key)
        self.staleness_delta = staleness_delta
        self.max_clock_skew = max_clock_skew
        self._nonce_counter = 0
        self._instance_salt = instance_salt
        self.rejected_cookies = 0
        self.stale_cookies = 0

    def build_frame(self, qos: HxQos) -> HxQosFrame:
        """Sealed Hx_QoS frame to push to the client.

        The nonce mixes :attr:`_nonce_counter` with ``instance_salt``.
        The counter alone is NOT unique across processes — it starts at
        0 in every manager, so N shards sharing one deployment key would
        reuse keystreams (seal two plaintexts under the same nonce, a
        two-time pad).  Deployments running multiple managers over one
        key must give each a distinct salt (e.g. seed + shard id).
        """
        self._nonce_counter += 1
        sealed = self._sealer.seal(
            qos.encode(), nonce_seed=self._nonce_counter, salt=self._instance_salt
        )
        return HxQosFrame.from_metrics(
            min_rtt=qos.min_rtt,
            max_bw_bps=qos.max_bw_bps,
            timestamp=qos.timestamp,
            sealed=sealed,
        )

    def open_echoed(self, sealed: bytes, now: float) -> Optional[HxQos]:
        """Validate a cookie echoed in a CHLO.

        Returns the authentic Hx_QoS, or ``None`` when the blob fails
        authentication (counted in :attr:`rejected_cookies`) or fails
        the freshness window (corner case 2, counted in
        :attr:`stale_cookies`).  Freshness is two-sided: a timestamp
        older than Δ is stale, and a timestamp more than
        :attr:`max_clock_skew` *ahead* of the server clock is equally
        untrustworthy — without the upper bound, a future-dated blob
        (clock skew or a forged timestamp surviving from an old key)
        would pass ``now - timestamp > Δ`` forever.
        """
        try:
            plaintext = self._sealer.open(sealed)
            qos = HxQos.decode(plaintext)
        except CookieError:
            self.rejected_cookies += 1
            return None
        age = now - qos.timestamp
        if age > self.staleness_delta or age < -self.max_clock_skew:
            self.stale_cookies += 1
            return None
        return qos

"""Online per-OD adaptive initializer (ROADMAP item 3).

The Table I schemes are *static*: Wira(Hx) trusts whatever MaxBW/MinRTT
the last session's cookie recorded, which overshoots the moment the
path drifts (and collapses to the experiential baseline whenever the
cookie is stale or missing).  :class:`AdaptiveInitPolicy` is an online
policy that tracks the realized QoS of every finished session on the
OD pair's chain (the engines call :meth:`observe` in chain order) and
initializes from a *lower-quantile* bandwidth estimate:

* ``init_pacing`` — the q-quantile of observed delivery rates, capped
  by the cookie's MaxBW when one is present.  A low quantile is a
  conservative estimate under drift: overshooting the drifted path
  costs first-frame loss tails, undershooting costs at most a little
  ramp time that BBR's startup recovers.
* ``init_cwnd`` — ``min(FF_Size, BDP)`` like Wira, with the BDP built
  from the learned estimates; the corner cases compose exactly as in
  §IV-C.
* Cold start (no observations, no cookie) falls back to Wira's Table I
  row, so the first session of every chain is never worse than Wira.

Determinism: the policy never draws randomness — its state is a pure
function of ``(seed, observed outcomes)``, asserted by
``tests/core/test_adaptive.py`` and, at fleet scale, by the
serial == sharded == resumed campaign gates.
"""

from __future__ import annotations

import hashlib
import json
from typing import List, Optional

from repro.core.initializer import (
    InitialParams,
    _PACKET_WIRE_BYTES,
    finalize_params,
    payload_to_wire_bytes,
    table1_params,
)
from repro.core.schemes import InitContext, InitPolicy, SchemeSpec

#: Default spec params (override via ``adaptive?{"q":0.5,...}``).
DEFAULT_QUANTILE = 0.25
DEFAULT_HISTORY = 12
DEFAULT_MIN_OBSERVATIONS = 2
DEFAULT_MARGIN = 1.0


def _quantile(samples: List[float], q: float) -> float:
    """Nearest-rank quantile of ``samples`` (deterministic, no rng)."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


class AdaptiveInitPolicy(InitPolicy):
    """Quantile-tracking per-OD initializer (scheme name ``adaptive``)."""

    __slots__ = ("_quantile", "_history", "_min_obs", "_margin", "_bw_bps", "_rtt_s")

    def __init__(self, spec: SchemeSpec, seed: int = 0) -> None:
        super().__init__(spec, seed)
        self._quantile = float(spec.param("q", DEFAULT_QUANTILE))  # type: ignore[arg-type]
        self._history = int(spec.param("history", DEFAULT_HISTORY))  # type: ignore[call-overload]
        self._min_obs = int(spec.param("min_obs", DEFAULT_MIN_OBSERVATIONS))  # type: ignore[call-overload]
        self._margin = float(spec.param("margin", DEFAULT_MARGIN))  # type: ignore[arg-type]
        if not 0.0 < self._quantile <= 1.0:
            raise ValueError("adaptive quantile must be in (0, 1]")
        if self._history < 1 or self._min_obs < 1:
            raise ValueError("adaptive history/min_obs must be positive")
        self._bw_bps: List[float] = []
        self._rtt_s: List[float] = []

    # -- feedback ----------------------------------------------------------

    def observe(self, result: object) -> None:
        """Fold one finished session's realized QoS into the estimator."""
        bw = getattr(result, "server_max_bw", None)
        rtt = getattr(result, "server_min_rtt", None)
        if isinstance(bw, (int, float)) and bw > 0.0:
            self._bw_bps.append(float(bw))
            del self._bw_bps[: -self._history]
        if isinstance(rtt, (int, float)) and rtt > 0.0:
            self._rtt_s.append(float(rtt))
            del self._rtt_s[: -self._history]

    # -- initialization ----------------------------------------------------

    def initial_params(self, ctx: InitContext) -> InitialParams:
        hx = ctx.hx_qos
        learned_bw: Optional[float] = None
        if len(self._bw_bps) >= self._min_obs:
            learned_bw = _quantile(self._bw_bps, self._quantile) * self._margin

        if learned_bw is None and hx is None:
            # Cold start: indistinguishable from Wira's Table I row.
            return table1_params(
                "wira",
                ctx.config,
                ff_size=ctx.ff_size,
                hx_qos=None,
                measured_rtt=ctx.measured_rtt,
            )

        if learned_bw is not None and hx is not None:
            bw = min(learned_bw, hx.max_bw_bps)
        elif hx is not None:
            bw = hx.max_bw_bps
        else:
            assert learned_bw is not None
            bw = learned_bw

        if ctx.measured_rtt is not None:
            rtt_for_bdp = ctx.measured_rtt
        elif hx is not None:
            rtt_for_bdp = hx.min_rtt
        elif self._rtt_s:
            rtt_for_bdp = _quantile(self._rtt_s, 0.5)
        else:
            rtt_for_bdp = ctx.config.init_rtt_exp

        bdp = max(_PACKET_WIRE_BYTES, int(bw * rtt_for_bdp / 8.0))
        ff_wire = (
            payload_to_wire_bytes(ctx.ff_size) if ctx.ff_size is not None else None
        )
        if ff_wire is None:
            # Corner case 1: the experiential window stands in for
            # FF_Size and the session re-initializes once parsed.
            cwnd = min(payload_to_wire_bytes(ctx.config.init_cwnd_exp), bdp)
            return finalize_params(ctx.config, cwnd, bw, False, True, True)
        return finalize_params(ctx.config, min(ff_wire, bdp), bw, True, True, False)

    # -- determinism surface ----------------------------------------------

    def state_digest(self) -> str:
        """Hex digest of the mutable estimator state."""
        payload = {
            "seed": self.seed,
            "spec": self.spec.value,
            "bw": [repr(x) for x in self._bw_bps],
            "rtt": [repr(x) for x in self._rtt_s],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

"""Streaming aggregates a fleet campaign folds sessions into.

A campaign never retains :class:`~repro.cdn.session.SessionResult`
objects — at 10^5–10^6 sessions the record list of the figure-scale
replay would dominate memory.  Instead every outcome is folded into a
:class:`SchemeAggregate` the moment it completes and dropped; chunk
aggregates merge into the campaign total.

Everything here is mergeable *exactly*: counters are integers, sums are
canonical dyadic rationals (:class:`~repro.metrics.sketch.ExactSum`),
and percentiles come from integer-bucket quantile sketches
(:class:`~repro.metrics.sketch.QuantileSketch`).  Merging chunk
aggregates in chunk-index order therefore yields byte-identical JSON
whether the chunks ran serially or across a process pool — the
acceptance criterion the fleet engine's tests pin.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.cdn.session import SessionResult
from repro.metrics.sketch import DEFAULT_ALPHA, QuantileSketch, StatAccumulator
from repro.obs.profiler import PHASES
from repro.quic.connection import HandshakeMode
from repro.workload.population import PlannedSession

#: Counter names, in serialization order.
_COUNTERS: Tuple[str, ...] = (
    "sessions",
    "completed",
    "first_sessions",
    "zero_rtt",
    "cookie_delivered",
    "used_cookie",
)


class SchemeAggregate:
    """Everything one scheme's sessions contribute, in O(1) memory."""

    __slots__ = (
        "sessions",
        "completed",
        "first_sessions",
        "zero_rtt",
        "cookie_delivered",
        "used_cookie",
        "ffct_stats",
        "ffct_sketch",
        "fflr_stats",
        "fflr_sketch",
        "phase_stats",
    )

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        self.sessions = 0
        self.completed = 0
        self.first_sessions = 0
        self.zero_rtt = 0
        self.cookie_delivered = 0
        self.used_cookie = 0
        self.ffct_stats = StatAccumulator()
        self.ffct_sketch = QuantileSketch(alpha=alpha)
        self.fflr_stats = StatAccumulator()
        self.fflr_sketch = QuantileSketch(alpha=alpha)
        # FFCT phase decomposition (repro.obs.profiler), populated only
        # when sessions ran under an active trace bus — the breakdown is
        # computed from trace events.  All-zero counts otherwise.
        self.phase_stats: Dict[str, StatAccumulator] = {
            name: StatAccumulator() for name in PHASES
        }

    def fold(self, planned: PlannedSession, result: SessionResult) -> None:
        """Absorb one session outcome and forget it."""
        self.sessions += 1
        self.completed += int(result.completed)
        self.first_sessions += int(planned.is_first_session)
        self.zero_rtt += int(planned.handshake_mode == HandshakeMode.ZERO_RTT)
        self.cookie_delivered += int(result.cookie_delivered)
        self.used_cookie += int(result.used_cookie)
        ffct = result.ffct
        if ffct is not None:
            self.ffct_stats.add(ffct)
            self.ffct_sketch.add(ffct)
        fflr = result.fflr
        if fflr is not None:
            self.fflr_stats.add(fflr)
            self.fflr_sketch.add(fflr)
        breakdown = result.phase_breakdown
        if breakdown is not None:
            for name in PHASES:
                self.phase_stats[name].add(breakdown.phase(name))

    @property
    def phase_sessions(self) -> int:
        """Sessions that contributed an FFCT phase breakdown."""
        return self.phase_stats[PHASES[0]].count

    def merge(self, other: "SchemeAggregate") -> None:
        for name in _COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.ffct_stats.merge(other.ffct_stats)
        self.ffct_sketch.merge(other.ffct_sketch)
        self.fflr_stats.merge(other.fflr_stats)
        self.fflr_sketch.merge(other.fflr_sketch)
        for name in PHASES:
            self.phase_stats[name].merge(other.phase_stats[name])

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {name: getattr(self, name) for name in _COUNTERS}
        payload["ffct_stats"] = self.ffct_stats.to_json()
        payload["ffct_sketch"] = self.ffct_sketch.to_json()
        payload["fflr_stats"] = self.fflr_stats.to_json()
        payload["fflr_sketch"] = self.fflr_sketch.to_json()
        payload["phases"] = {name: self.phase_stats[name].to_json() for name in PHASES}
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "SchemeAggregate":
        agg = cls.__new__(cls)
        try:
            for name in _COUNTERS:
                setattr(agg, name, int(payload[name]))  # type: ignore[call-overload]
            agg.ffct_stats = StatAccumulator.from_json(payload["ffct_stats"])  # type: ignore[arg-type]
            agg.ffct_sketch = QuantileSketch.from_json(payload["ffct_sketch"])  # type: ignore[arg-type]
            agg.fflr_stats = StatAccumulator.from_json(payload["fflr_stats"])  # type: ignore[arg-type]
            agg.fflr_sketch = QuantileSketch.from_json(payload["fflr_sketch"])  # type: ignore[arg-type]
            phases: Mapping[str, Mapping[str, object]] = payload["phases"]  # type: ignore[assignment]
            agg.phase_stats = {
                name: StatAccumulator.from_json(phases[name]) for name in PHASES
            }
        except KeyError as exc:
            # Missing keys mean a payload from an incompatible writer (the
            # format version should have caught it); surface the defect as
            # the ValueError every caller already handles, never a raw
            # KeyError traceback.
            raise ValueError(f"scheme aggregate payload missing key {exc}") from exc
        return agg


class CampaignAggregate:
    """Per-scheme aggregates of one campaign (or one chunk of it)."""

    __slots__ = ("alpha", "schemes")

    def __init__(self, scheme_values: Iterable[str], alpha: float = DEFAULT_ALPHA) -> None:
        self.alpha = alpha
        self.schemes: Dict[str, SchemeAggregate] = {
            value: SchemeAggregate(alpha=alpha) for value in scheme_values
        }

    def fold(self, scheme_value: str, planned: PlannedSession, result: SessionResult) -> None:
        self.schemes[scheme_value].fold(planned, result)

    def merge(self, other: "CampaignAggregate") -> None:
        if sorted(self.schemes) != sorted(other.schemes):
            raise ValueError(
                "cannot merge campaign aggregates over different scheme sets"
            )
        for value in sorted(other.schemes):
            self.schemes[value].merge(other.schemes[value])

    @property
    def total_sessions(self) -> int:
        return sum(agg.sessions for agg in self.schemes.values())

    def to_json(self) -> Dict[str, object]:
        return {
            "alpha": self.alpha,
            "schemes": {
                value: agg.to_json() for value, agg in sorted(self.schemes.items())
            },
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "CampaignAggregate":
        agg = cls.__new__(cls)
        try:
            agg.alpha = float(payload["alpha"])  # type: ignore[arg-type]
            schemes: Mapping[str, Mapping[str, object]] = payload["schemes"]  # type: ignore[assignment]
        except KeyError as exc:
            raise ValueError(f"campaign aggregate payload missing key {exc}") from exc
        agg.schemes = {
            value: SchemeAggregate.from_json(schemes[value]) for value in sorted(schemes)
        }
        return agg


def merge_chunks(
    scheme_values: Iterable[str],
    alpha: float,
    chunk_payloads: List[Mapping[str, object]],
) -> CampaignAggregate:
    """Merge chunk aggregates **in the given (chunk-index) order**.

    The fixed order is what makes serial and sharded campaigns
    byte-identical: a pool may *complete* chunks in any order, but the
    caller hands them over sorted by chunk index.
    """
    total = CampaignAggregate(scheme_values, alpha=alpha)
    for payload in chunk_payloads:
        total.merge(CampaignAggregate.from_json(payload))
    return total


__all__ = [
    "CampaignAggregate",
    "SchemeAggregate",
    "merge_chunks",
]

"""Campaign reports: deterministic JSON summaries of a fleet run.

The report is a pure function of the merged
:class:`~repro.fleet.aggregate.CampaignAggregate` — no timestamps, no
host details, nothing environment-dependent — so its canonical JSON
encoding (and hence :func:`report_hash`) is the campaign's identity:
two runs agree iff their reports hash identically.  The serial-versus-
sharded and resume-versus-uninterrupted equivalence tests, and the CI
fleet smoke job, all compare exactly this hash.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from repro.fleet.aggregate import CampaignAggregate, SchemeAggregate
from repro.obs.profiler import PHASES

#: Report percentiles, mirroring the paper's §VI tail emphasis.
PERCENTILES = (50, 90, 99)


def canonical_json(payload: object) -> str:
    """The one JSON encoding used for hashing and byte comparisons."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def report_hash(report: Dict[str, object]) -> str:
    return hashlib.sha256(canonical_json(report).encode("utf-8")).hexdigest()


def _metric_summary(agg: SchemeAggregate, which: str) -> Optional[Dict[str, object]]:
    stats = agg.ffct_stats if which == "ffct" else agg.fflr_stats
    sketch = agg.ffct_sketch if which == "ffct" else agg.fflr_sketch
    if stats.count == 0:
        return None
    summary: Dict[str, object] = {
        "count": stats.count,
        "mean": stats.mean,
        "min": stats.min,
        "max": stats.max,
    }
    for p in PERCENTILES:
        summary[f"p{p}"] = sketch.percentile(p)
    return summary


def _scheme_summary(agg: SchemeAggregate) -> Dict[str, object]:
    summary: Dict[str, object] = {
        "sessions": agg.sessions,
        "completed": agg.completed,
        "completion_rate": agg.completed / agg.sessions if agg.sessions else None,
        "first_sessions": agg.first_sessions,
        "zero_rtt": agg.zero_rtt,
        "cookie_delivered": agg.cookie_delivered,
        "used_cookie": agg.used_cookie,
        "ffct": _metric_summary(agg, "ffct"),
        "fflr": _metric_summary(agg, "fflr"),
        "phases": _phase_summary(agg),
    }
    return summary


def _phase_summary(agg: SchemeAggregate) -> Optional[Dict[str, object]]:
    """Mean seconds per FFCT phase (profiler decomposition).

    ``None`` unless sessions ran under an active trace bus — the phase
    breakdown is computed from trace events (``WIRA_TRACE=1``).
    """
    if agg.phase_sessions == 0:
        return None
    return {
        "sessions": agg.phase_sessions,
        "mean": {name: agg.phase_stats[name].mean for name in PHASES},
    }


def _improvements(
    base: SchemeAggregate, other: SchemeAggregate
) -> Optional[Dict[str, float]]:
    """Relative FFCT reduction vs baseline at each report percentile."""
    if base.ffct_stats.count == 0 or other.ffct_stats.count == 0:
        return None
    improvements: Dict[str, float] = {}
    for p in PERCENTILES:
        reference = base.ffct_sketch.percentile(p)
        if reference <= 0:
            continue
        improvements[f"p{p}"] = (reference - other.ffct_sketch.percentile(p)) / reference
    mean_base = base.ffct_stats.mean
    if mean_base and mean_base > 0 and other.ffct_stats.mean is not None:
        improvements["mean"] = (mean_base - other.ffct_stats.mean) / mean_base
    return improvements or None


def build_report(
    aggregate: CampaignAggregate,
    key: str,
    baseline_scheme: str = "baseline",
) -> Dict[str, object]:
    """The deterministic campaign summary.

    ``key`` is the campaign's config/code hash
    (:meth:`~repro.fleet.engine.FleetConfig.key`), embedded so a report
    file is traceable back to exactly one campaign.
    """
    schemes = {
        value: _scheme_summary(agg) for value, agg in sorted(aggregate.schemes.items())
    }
    report: Dict[str, object] = {
        "campaign_key": key,
        "sketch_alpha": aggregate.alpha,
        "total_sessions": aggregate.total_sessions,
        "schemes": schemes,
    }
    base = aggregate.schemes.get(baseline_scheme)
    if base is not None:
        report["ffct_improvement_over_baseline"] = {
            value: _improvements(base, agg)
            for value, agg in sorted(aggregate.schemes.items())
            if value != baseline_scheme
        }
    return report


__all__ = [
    "PERCENTILES",
    "build_report",
    "canonical_json",
    "report_hash",
]

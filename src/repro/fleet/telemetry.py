"""Streaming campaign telemetry: mergeable per-chunk snapshots.

A fleet campaign used to be a black box between checkpoints — chunk
counts were observable, the FFCT distribution was not, and the paper's
headline claim is *distributional* (Wira(Hx) shifts the first-frame
tail).  This module is the tap that makes a running campaign legible:
every completed chunk writes one **snapshot** file into a telemetry
directory, alongside (and through the same atomic-write primitive as)
the checkpoint.

A snapshot carries

* the chunk's :class:`~repro.fleet.aggregate.CampaignAggregate` payload
  — per-scheme :class:`~repro.metrics.sketch.QuantileSketch` +
  :class:`~repro.metrics.sketch.ExactSum` aggregates, so quantiles of
  the *campaign so far* are one merge away at any instant;
* derived completion/fault counters (a *fault* is a folded session that
  did not complete);
* the chunk index and campaign key, binding it to exactly one campaign;
* a ``timing`` section (wall-clock seconds since campaign start) that
  feeds sessions/sec and ETA.

Determinism contract
--------------------
The aggregate algebra is exactly order-invariant — integer counters,
canonical dyadic :class:`ExactSum`, integer sketch buckets — so
:func:`merge_snapshots` over the chunk snapshots **in any order** yields
canonical JSON byte-identical to the final campaign report's aggregates.
The ``timing`` section is the only wall-clock-dependent part of a
snapshot and is never merged, so liveness never costs determinism.

Schema versioning (mirrors the trace-bus rule, CONTRIBUTING.md): adding
a key is backwards compatible and does NOT bump
:data:`TELEMETRY_SCHEMA_VERSION`; renaming/removing a key or changing a
meaning/unit DOES, and readers must reject versions they do not know —
:meth:`TelemetrySnapshot.from_json` raises :class:`TelemetrySchemaError`
on skew rather than guessing.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.fleet.aggregate import CampaignAggregate
from repro.fleet.checkpoint import atomic_write_json

#: Bump on incompatible snapshot-shape changes (see module docstring).
TELEMETRY_SCHEMA_VERSION = 1

#: Snapshot file name pattern inside a telemetry directory.
SNAPSHOT_PREFIX = "chunk-"
SNAPSHOT_GLOB = "chunk-*.json"

#: Quantiles the live view surfaces, mirroring the report percentiles.
LIVE_PERCENTILES: Tuple[int, ...] = (50, 90, 99)


class TelemetrySchemaError(RuntimeError):
    """A snapshot's schema version is one this reader does not know."""


def default_telemetry_dir(checkpoint_path: Path) -> Path:
    """The conventional snapshot directory for a checkpoint path.

    ``campaign.json`` → ``campaign.json.telemetry/`` — derived, never
    guessed, so ``wira-fleet status --live`` can find the snapshots of
    any checkpointed campaign without extra flags.
    """
    checkpoint_path = Path(checkpoint_path)
    return checkpoint_path.parent / (checkpoint_path.name + ".telemetry")


def snapshot_path(directory: Path, chunk_index: int) -> Path:
    """Snapshot file path for one chunk (zero-padded, sortable)."""
    return Path(directory) / f"{SNAPSHOT_PREFIX}{chunk_index:06d}.json"


class TelemetrySnapshot:
    """One chunk's contribution to the live campaign view."""

    __slots__ = (
        "campaign_key",
        "n_chunks",
        "chunk_index",
        "aggregate",
        "counters",
        "timing",
    )

    def __init__(
        self,
        campaign_key: str,
        n_chunks: int,
        chunk_index: int,
        aggregate: Dict[str, object],
        counters: Dict[str, object],
        timing: Dict[str, Optional[float]],
    ) -> None:
        self.campaign_key = campaign_key
        self.n_chunks = n_chunks
        self.chunk_index = chunk_index
        self.aggregate = aggregate
        self.counters = counters
        self.timing = timing

    @classmethod
    def for_chunk(
        cls,
        campaign_key: str,
        n_chunks: int,
        chunk_index: int,
        aggregate: Mapping[str, object],
        elapsed_s: Optional[float] = None,
    ) -> "TelemetrySnapshot":
        """Build a snapshot from one chunk's aggregate payload.

        Completion/fault counters are *derived* from the aggregate —
        a fault is a session that was folded but did not complete — so
        the counters can never disagree with the quantile state.
        ``elapsed_s`` is wall-clock seconds since campaign start at
        write time (``None`` for chunks adopted from a checkpoint, whose
        original timing is unknown).
        """
        return cls(
            campaign_key=campaign_key,
            n_chunks=n_chunks,
            chunk_index=chunk_index,
            aggregate=dict(aggregate),
            counters=derive_counters(aggregate),
            timing={"elapsed_s": elapsed_s},
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "campaign_key": self.campaign_key,
            "n_chunks": self.n_chunks,
            "chunk_index": self.chunk_index,
            "aggregate": self.aggregate,
            "counters": self.counters,
            "timing": self.timing,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "TelemetrySnapshot":
        """Parse a snapshot payload.

        Raises :class:`TelemetrySchemaError` on a schema-version skew
        and ``ValueError`` on structural defects (both of which a
        mid-replace torn read can also look like — callers that poll
        live files should go through :func:`load_snapshot`, which
        retries the latter).
        """
        if not isinstance(payload, Mapping):
            raise ValueError("snapshot is not a JSON object")
        version = payload.get("schema_version")
        if version != TELEMETRY_SCHEMA_VERSION:
            raise TelemetrySchemaError(
                f"telemetry snapshot schema_version {version!r} not supported "
                f"(expected {TELEMETRY_SCHEMA_VERSION})"
            )
        key = payload.get("campaign_key")
        n_chunks = payload.get("n_chunks")
        chunk_index = payload.get("chunk_index")
        aggregate = payload.get("aggregate")
        counters = payload.get("counters")
        timing = payload.get("timing")
        if (
            not isinstance(key, str)
            or not isinstance(n_chunks, int)
            or not isinstance(chunk_index, int)
            or not 0 <= chunk_index < n_chunks
            or not isinstance(aggregate, dict)
            or not isinstance(counters, dict)
            or not isinstance(timing, dict)
        ):
            raise ValueError("snapshot is structurally malformed")
        return cls(
            campaign_key=key,
            n_chunks=n_chunks,
            chunk_index=chunk_index,
            aggregate=aggregate,
            counters=counters,
            timing={
                "elapsed_s": None
                if timing.get("elapsed_s") is None
                else float(timing["elapsed_s"])
            },
        )


def derive_counters(aggregate: Mapping[str, object]) -> Dict[str, object]:
    """Completion/fault counters derived from an aggregate payload."""
    per_scheme: Dict[str, Dict[str, int]] = {}
    schemes = aggregate.get("schemes")
    if isinstance(schemes, Mapping):
        for value in sorted(schemes):
            entry = schemes[value]
            if not isinstance(entry, Mapping):
                continue
            sessions = int(entry.get("sessions", 0))  # type: ignore[call-overload]
            completed = int(entry.get("completed", 0))  # type: ignore[call-overload]
            per_scheme[value] = {
                "sessions": sessions,
                "completed": completed,
                "faults": sessions - completed,
            }
    totals = {
        "sessions": sum(per_scheme[s]["sessions"] for s in sorted(per_scheme)),
        "completed": sum(per_scheme[s]["completed"] for s in sorted(per_scheme)),
        "faults": sum(per_scheme[s]["faults"] for s in sorted(per_scheme)),
    }
    return {"schemes": per_scheme, "total": totals}


# ---------------------------------------------------------------------------
# Disk I/O — the write side shares the checkpoint's atomic primitive; the
# read side is defensive because it races a live writer.


def write_snapshot(directory: Path, snapshot: TelemetrySnapshot) -> Path:
    """Atomically persist one snapshot; returns its path."""
    path = snapshot_path(directory, snapshot.chunk_index)
    atomic_write_json(path, snapshot.to_json())
    return path


def load_snapshot(
    path: Path, retries: int = 3, delay_s: float = 0.02
) -> Optional[TelemetrySnapshot]:
    """Read one snapshot, tolerating a concurrent atomic replace.

    ``os.replace`` makes torn *contents* impossible on POSIX, but a
    poller can still lose the race between listing and opening (the
    file vanished), or run against filesystems without atomic rename
    semantics — so unreadable/malformed reads are retried ``retries``
    times and then reported as ``None``, never an exception.  A
    **schema-version skew** is different: the file is intact but from a
    future (or ancient) writer, and retrying cannot fix it —
    :class:`TelemetrySchemaError` propagates so callers can tell the
    user to upgrade instead of silently dropping data.
    """
    path = Path(path)
    for attempt in range(max(1, retries)):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return TelemetrySnapshot.from_json(payload)
        except TelemetrySchemaError:
            raise
        except (OSError, ValueError):
            if attempt + 1 >= max(1, retries):
                return None
            time.sleep(delay_s)
    return None


def scan_snapshots(
    directory: Path, retries: int = 3
) -> Dict[int, TelemetrySnapshot]:
    """All readable snapshots in a telemetry directory, by chunk index.

    Unreadable files (mid-replace races, partial writes on non-atomic
    filesystems) are skipped after retries; schema skews propagate
    (see :func:`load_snapshot`).
    """
    directory = Path(directory)
    snapshots: Dict[int, TelemetrySnapshot] = {}
    if not directory.is_dir():
        return snapshots
    for path in sorted(directory.glob(SNAPSHOT_GLOB)):
        snapshot = load_snapshot(path, retries=retries)
        if snapshot is not None:
            snapshots[snapshot.chunk_index] = snapshot
    return snapshots


# ---------------------------------------------------------------------------
# The snapshot algebra: any-order merge == the final report's aggregates.


def merge_snapshots(snapshots: Iterable[TelemetrySnapshot]) -> CampaignAggregate:
    """Merge chunk snapshots into the campaign-so-far aggregate.

    Order-invariant **by construction** (every aggregate component
    merges exactly), so callers may pass snapshots in directory-listing
    order, completion order, or any other: the canonical JSON of the
    result is byte-identical, and — over the full snapshot set — equal
    to the final campaign report's aggregates.  Mixing snapshots from
    different campaigns raises ``ValueError``.
    """
    ordered: List[TelemetrySnapshot] = list(snapshots)
    if not ordered:
        raise ValueError("cannot merge an empty snapshot set")
    key = ordered[0].campaign_key
    seen: Dict[int, str] = {}
    for snapshot in ordered:
        if snapshot.campaign_key != key:
            raise ValueError(
                f"snapshot for chunk {snapshot.chunk_index} belongs to campaign "
                f"{snapshot.campaign_key[:12]}…, not {key[:12]}…"
            )
        if snapshot.chunk_index in seen:
            raise ValueError(f"duplicate snapshot for chunk {snapshot.chunk_index}")
        seen[snapshot.chunk_index] = snapshot.campaign_key
    total = CampaignAggregate.from_json(ordered[0].aggregate)
    for snapshot in ordered[1:]:
        total.merge(CampaignAggregate.from_json(snapshot.aggregate))
    return total


# ---------------------------------------------------------------------------
# Live view: everything the dashboard renders, computed in one place.


class LiveStatus:
    """A point-in-time summary of a (possibly still running) campaign."""

    __slots__ = (
        "campaign_key",
        "n_chunks",
        "chunks_done",
        "sessions",
        "completed",
        "faults",
        "per_scheme",
        "elapsed_seconds",
        "sessions_per_second",
        "eta_seconds",
    )

    def __init__(
        self,
        campaign_key: str,
        n_chunks: int,
        chunks_done: int,
        sessions: int,
        completed: int,
        faults: int,
        per_scheme: Dict[str, Dict[str, object]],
        elapsed_seconds: Optional[float],
        sessions_per_second: Optional[float],
        eta_seconds: Optional[float],
    ) -> None:
        self.campaign_key = campaign_key
        self.n_chunks = n_chunks
        self.chunks_done = chunks_done
        self.sessions = sessions
        self.completed = completed
        self.faults = faults
        self.per_scheme = per_scheme
        self.elapsed_seconds = elapsed_seconds
        self.sessions_per_second = sessions_per_second
        self.eta_seconds = eta_seconds

    @property
    def complete(self) -> bool:
        return self.chunks_done >= self.n_chunks

    @property
    def completion_fraction(self) -> float:
        if self.n_chunks <= 0:
            return 0.0
        return self.chunks_done / self.n_chunks

    def quantiles_seconds(self) -> Dict[str, Optional[Tuple[float, ...]]]:
        """Per-scheme FFCT (p50, p90, p99) in seconds, for the strips."""
        out: Dict[str, Optional[Tuple[float, ...]]] = {}
        for value in sorted(self.per_scheme):
            entry = self.per_scheme[value]
            if entry.get("p50") is None:
                out[value] = None
            else:
                out[value] = tuple(
                    float(entry[f"p{p}"])  # type: ignore[arg-type]
                    for p in LIVE_PERCENTILES
                )
        return out


def _snapshot_sessions(snapshot: TelemetrySnapshot) -> int:
    """Sessions one chunk folded, re-derived from its aggregate."""
    total = derive_counters(snapshot.aggregate)["total"]
    return int(total["sessions"])  # type: ignore[call-overload,index]


def live_status(snapshots: Mapping[int, TelemetrySnapshot]) -> LiveStatus:
    """Compute the dashboard view from the snapshots read so far.

    Rate and ETA are **current-run** figures: chunks adopted from a
    checkpoint on resume carry ``elapsed_s=None`` (their original
    wall-clock cost is unknown), so only snapshots with real timings
    contribute sessions and chunk counts to ``sessions_per_second`` and
    ``eta_seconds`` — a resumed campaign's rate is not inflated by work
    a previous run paid for.
    """
    if not snapshots:
        raise ValueError("no snapshots to summarize")
    ordered = [snapshots[index] for index in sorted(snapshots)]
    merged = merge_snapshots(ordered)
    per_scheme: Dict[str, Dict[str, object]] = {}
    for value in sorted(merged.schemes):
        agg = merged.schemes[value]
        entry: Dict[str, object] = {
            "sessions": agg.sessions,
            "completed": agg.completed,
            "faults": agg.sessions - agg.completed,
        }
        for p in LIVE_PERCENTILES:
            entry[f"p{p}"] = (
                agg.ffct_sketch.percentile(p) if agg.ffct_sketch.count else None
            )
        per_scheme[value] = entry
    sessions = merged.total_sessions
    completed = sum(agg.completed for agg in merged.schemes.values())
    n_chunks = ordered[0].n_chunks
    done = len(ordered)
    timed = [s for s in ordered if s.timing.get("elapsed_s") is not None]
    elapsed = (
        max(float(s.timing["elapsed_s"]) for s in timed)  # type: ignore[arg-type]
        if timed
        else None
    )
    run_sessions = sum(_snapshot_sessions(s) for s in timed)
    rate = run_sessions / elapsed if elapsed and elapsed > 0 else None
    eta: Optional[float] = None
    if done >= n_chunks:
        eta = 0.0
    elif elapsed is not None and timed:
        eta = elapsed / len(timed) * (n_chunks - done)
    return LiveStatus(
        campaign_key=ordered[0].campaign_key,
        n_chunks=n_chunks,
        chunks_done=done,
        sessions=sessions,
        completed=completed,
        faults=sessions - completed,
        per_scheme=per_scheme,
        elapsed_seconds=elapsed,
        sessions_per_second=rate,
        eta_seconds=eta,
    )


__all__ = [
    "LIVE_PERCENTILES",
    "LiveStatus",
    "SNAPSHOT_GLOB",
    "SNAPSHOT_PREFIX",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetrySchemaError",
    "TelemetrySnapshot",
    "default_telemetry_dir",
    "derive_counters",
    "live_status",
    "load_snapshot",
    "merge_snapshots",
    "scan_snapshots",
    "snapshot_path",
    "write_snapshot",
]

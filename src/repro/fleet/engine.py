"""The fleet campaign engine: chunked, sharded, resumable replay.

A campaign replays a :class:`~repro.workload.population.FleetPopulation`
— 10^5–10^6 sessions — under each comparison scheme with the paper's
paired A/B structure (the same chains replay under every scheme).  The
unit of work is a *chunk* of ``chunk_chains`` consecutive OD chains;
each chunk independently regenerates its chains from ``(seed, index)``,
replays them, and folds every outcome straight into a
:class:`~repro.fleet.aggregate.CampaignAggregate`.  Only the chunk's
aggregate JSON crosses the process boundary, so resident memory is
bounded by O(chunk) regardless of campaign size.

Determinism contract: a chunk's aggregate depends only on the campaign
config and the chunk index, and the engine merges chunk aggregates in
chunk-index order — so ``jobs=1`` and ``jobs=N`` campaigns produce
byte-identical reports, and a resumed campaign is byte-identical to an
uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import logging
import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro import obs as _obs
from repro.core.config import WiraConfig
from repro.core.initializer import Scheme
from repro.core.schemes import as_spec
from repro.fleet.aggregate import CampaignAggregate, merge_chunks
from repro.fleet.checkpoint import CheckpointState, load_checkpoint, save_checkpoint
from repro.fleet.telemetry import TelemetrySnapshot, snapshot_path, write_snapshot
from repro.metrics.sketch import DEFAULT_ALPHA
from repro.runtime import settings
from repro.workload.population import DeploymentConfig, FleetPopulation

logger = logging.getLogger(__name__)


def _trace(name: str, data: Dict[str, object]) -> None:
    """Emit a ``fleet:*`` milestone onto the active trace bus, if any.

    Campaign milestones are driver-side wall-clock moments, not simulated
    ones, so they carry ``time=0.0`` and the sentinel connection id
    ``"fleet"`` — they live in the bus ring buffer and counters for
    inspection, but are emitted outside any session scope and therefore
    never land in per-session trace files (whose byte streams stay
    identical with or without a campaign running).
    """
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.emit(0.0, name, "fleet", data)

#: Bump when chunk semantics change; folded into the campaign key.
#: v2: chunk aggregates gained the per-scheme "phases" section.
FLEET_FORMAT_VERSION = 2

#: Default scheme mix — the paper's Table I comparison set.
DEFAULT_SCHEMES: Tuple[str, ...] = (
    Scheme.BASELINE.value,
    Scheme.WIRA_FF.value,
    Scheme.WIRA_HX.value,
    Scheme.WIRA.value,
)


class CampaignMismatchError(RuntimeError):
    """A checkpoint belongs to a different campaign (config or code)."""


@dataclass(frozen=True)
class FleetConfig:
    """Everything identifying one campaign."""

    population: DeploymentConfig = field(default_factory=DeploymentConfig)
    schemes: Tuple[str, ...] = DEFAULT_SCHEMES
    wira: WiraConfig = field(default_factory=WiraConfig)
    #: OD chains per work unit.  Small enough to bound worker memory,
    #: large enough to amortize per-chunk overhead.
    chunk_chains: int = 25
    #: Completed chunks between checkpoint writes.
    checkpoint_every: int = 4
    sketch_alpha: float = DEFAULT_ALPHA

    def __post_init__(self) -> None:
        if self.chunk_chains < 1:
            raise ValueError("chunk_chains must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if not self.schemes:
            raise ValueError("need at least one scheme")
        for value in self.schemes:
            as_spec(value)  # raises ValueError on unknown schemes

    @property
    def n_chunks(self) -> int:
        n = self.population.n_od_pairs
        return (n + self.chunk_chains - 1) // self.chunk_chains

    def chunk_bounds(self, chunk_index: int) -> Tuple[int, int]:
        """Chain index range ``[start, stop)`` of one chunk."""
        if not 0 <= chunk_index < self.n_chunks:
            raise IndexError(f"chunk_index {chunk_index} out of range [0, {self.n_chunks})")
        start = chunk_index * self.chunk_chains
        return start, min(start + self.chunk_chains, self.population.n_od_pairs)

    def to_json(self) -> Dict[str, object]:
        return {
            "population": asdict(self.population),
            "schemes": list(self.schemes),
            "wira": asdict(self.wira),
            "chunk_chains": self.chunk_chains,
            "checkpoint_every": self.checkpoint_every,
            "sketch_alpha": self.sketch_alpha,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "FleetConfig":
        return cls(
            population=DeploymentConfig(**payload["population"]),  # type: ignore[arg-type]
            schemes=tuple(payload["schemes"]),  # type: ignore[arg-type]
            wira=WiraConfig(**payload["wira"]),  # type: ignore[arg-type]
            chunk_chains=int(payload["chunk_chains"]),  # type: ignore[call-overload]
            checkpoint_every=int(payload["checkpoint_every"]),  # type: ignore[call-overload]
            sketch_alpha=float(payload["sketch_alpha"]),  # type: ignore[arg-type]
        )

    def key(self) -> str:
        """Content hash identifying the campaign's inputs *and* code.

        Folding the source fingerprint in means a checkpoint written by
        different code never silently resumes — same safety property as
        the replay disk cache.
        """
        from repro.experiments.runner import source_fingerprint

        payload = json.dumps(
            {
                "format_version": FLEET_FORMAT_VERSION,
                "source": source_fingerprint(),
                "config": self.to_json(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]

    def with_(self, **changes: object) -> "FleetConfig":
        return replace(self, **changes)  # type: ignore[arg-type]


#: Progress callback: (completed_chunks, total_chunks, sessions_so_far).
ProgressFn = Callable[[int, int, int], None]


def run_chunk(config: FleetConfig, chunk_index: int) -> Dict[str, object]:
    """Replay one chunk and return its aggregate as JSON.

    Pure function of ``(config, chunk_index)`` — the determinism
    anchor everything else (sharding, checkpointing, resume) rests on.

    When the batched kernel is enabled (``WIRA_BATCH``, the default) the
    chunk's chains replay together per scheme in lock-step waves on one
    :class:`~repro.simnet.batch.BatchEventLoop`; outcomes are buffered —
    still O(chunk) memory — and folded in the exact ``(od, scheme,
    session)`` order of the serial reference loop, so both paths yield
    byte-identical aggregates.
    """
    from repro import obs as _obs
    from repro.experiments.common import iter_chain_outcomes, replay_chains_wave_batched

    population = FleetPopulation(config.population)
    aggregate = CampaignAggregate(config.schemes, alpha=config.sketch_alpha)
    start, stop = config.chunk_bounds(chunk_index)
    if settings.current().batch and _obs.ACTIVE is None and stop - start > 1:
        chains = [population.chain(od_index) for od_index in range(start, stop)]
        per_scheme = {
            scheme_value: replay_chains_wave_batched(
                as_spec(scheme_value), chains, start, config.population, config.wira
            )
            for scheme_value in config.schemes
        }
        for offset in range(stop - start):
            for scheme_value in config.schemes:
                for outcome in per_scheme[scheme_value][offset]:
                    aggregate.fold(scheme_value, outcome.spec, outcome.result)
        return aggregate.to_json()
    for od_index in range(start, stop):
        chain = population.chain(od_index)
        for scheme_value in config.schemes:
            scheme = as_spec(scheme_value)
            for outcome in iter_chain_outcomes(
                scheme, chain, od_index, config.population, config.wira
            ):
                aggregate.fold(scheme_value, outcome.spec, outcome.result)
    return aggregate.to_json()


def _run_chunk_json(config_json: str, chunk_index: int) -> Tuple[int, Dict[str, object]]:
    """Pool entry point: config crosses the fork as canonical JSON."""
    config = FleetConfig.from_json(json.loads(config_json))
    return chunk_index, run_chunk(config, chunk_index)


class FleetCampaign:
    """Drives one campaign: fresh, sharded, checkpointed, or resumed."""

    def __init__(
        self,
        config: FleetConfig,
        checkpoint_path: Optional[Path] = None,
        progress: Optional[ProgressFn] = None,
        telemetry_dir: Optional[Path] = None,
    ) -> None:
        self.config = config
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.progress = progress
        # Where live telemetry snapshots land, one per completed chunk.
        # A runtime concern, deliberately NOT part of FleetConfig: the
        # campaign key must not change because an operator watches.
        self.telemetry_dir = Path(telemetry_dir) if telemetry_dir else None
        self.key = config.key()
        self._chunks: Dict[int, Dict[str, object]] = {}
        self._since_checkpoint = 0
        self._started: Optional[float] = None

    # -- resume ------------------------------------------------------------

    def load_completed(self, require_checkpoint: bool = False) -> int:
        """Adopt completed chunks from the checkpoint file, if any.

        Returns the number of chunks adopted.  A checkpoint whose key
        does not match this campaign raises
        :class:`CampaignMismatchError`; a missing or corrupt file is
        ``0`` adopted chunks (or an error when ``require_checkpoint``).
        """
        if self.checkpoint_path is None:
            if require_checkpoint:
                raise FileNotFoundError("no checkpoint path configured")
            return 0
        state = load_checkpoint(self.checkpoint_path)
        if state is None:
            if require_checkpoint:
                raise FileNotFoundError(
                    f"no usable checkpoint at {self.checkpoint_path}"
                )
            return 0
        if state.key != self.key:
            raise CampaignMismatchError(
                f"checkpoint {self.checkpoint_path} was written by a different "
                f"campaign (config or code changed); refusing to resume"
            )
        self._chunks.update(state.chunks)
        _trace(
            "fleet:resume_adopted",
            {"chunks": len(state.chunks), "n_chunks": state.n_chunks},
        )
        return len(state.chunks)

    # -- execution ---------------------------------------------------------

    def run(self, jobs: Optional[int] = None) -> CampaignAggregate:
        """Execute all pending chunks and return the merged aggregate."""
        jobs = settings.current().jobs if jobs is None else max(1, jobs)
        self._started = time.perf_counter()
        self._sync_telemetry()
        pending = [i for i in range(self.config.n_chunks) if i not in self._chunks]
        self._report_progress()
        if pending:
            if jobs > 1:
                try:
                    self._run_sharded(pending, jobs)
                except Exception as exc:
                    logger.warning(
                        "sharded campaign with %d workers failed (%s); "
                        "finishing serially",
                        jobs,
                        exc,
                    )
                    pending = [
                        i for i in range(self.config.n_chunks) if i not in self._chunks
                    ]
                    self._run_serial(pending)
            else:
                self._run_serial(pending)
        self._write_checkpoint(force=True)
        ordered = [self._chunks[i] for i in sorted(self._chunks)]
        return merge_chunks(self.config.schemes, self.config.sketch_alpha, ordered)

    def _run_serial(self, pending: List[int]) -> None:
        for chunk_index in pending:
            _trace("fleet:chunk_begin", {"chunk": chunk_index})
            self._complete(chunk_index, run_chunk(self.config, chunk_index))

    def _run_sharded(self, pending: List[int], jobs: int) -> None:
        config_json = json.dumps(self.config.to_json(), sort_keys=True)
        mp_context = None
        if "fork" in multiprocessing.get_all_start_methods():
            mp_context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)), mp_context=mp_context
        ) as pool:
            futures: Set["Future[Tuple[int, Dict[str, object]]]"] = set()
            for index in pending:
                _trace("fleet:chunk_begin", {"chunk": index})
                futures.add(pool.submit(_run_chunk_json, config_json, index))
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk_index, payload = future.result()
                    self._complete(chunk_index, payload)

    def _complete(self, chunk_index: int, payload: Dict[str, object]) -> None:
        self._chunks[chunk_index] = payload
        self._since_checkpoint += 1
        _trace("fleet:chunk_complete", {"chunk": chunk_index})
        self._write_snapshot(chunk_index, payload)
        self._report_progress()
        if self._since_checkpoint >= self.config.checkpoint_every:
            self._write_checkpoint()

    def _write_checkpoint(self, force: bool = False) -> None:
        if self.checkpoint_path is None:
            return
        if not force and self._since_checkpoint < self.config.checkpoint_every:
            return
        state = CheckpointState(
            key=self.key,
            config=self.config.to_json(),
            n_chunks=self.config.n_chunks,
            chunks=dict(self._chunks),
        )
        save_checkpoint(self.checkpoint_path, state)
        self._since_checkpoint = 0

    # -- telemetry ---------------------------------------------------------

    def _elapsed(self) -> Optional[float]:
        if self._started is None:
            return None
        return time.perf_counter() - self._started

    def _write_snapshot(
        self,
        chunk_index: int,
        payload: Dict[str, object],
        elapsed_s: Optional[float] = -1.0,
    ) -> None:
        if self.telemetry_dir is None:
            return
        if elapsed_s is not None and elapsed_s < 0:
            elapsed_s = self._elapsed()
        snapshot = TelemetrySnapshot.for_chunk(
            campaign_key=self.key,
            n_chunks=self.config.n_chunks,
            chunk_index=chunk_index,
            aggregate=payload,
            elapsed_s=elapsed_s,
        )
        write_snapshot(self.telemetry_dir, snapshot)
        _trace(
            "fleet:snapshot_written",
            {"chunk": chunk_index, "dir": str(self.telemetry_dir)},
        )

    def _sync_telemetry(self) -> None:
        """Reconcile the telemetry directory with this campaign's state.

        Called once at ``run()`` start: snapshots left behind by another
        campaign (different key) or by chunks this run does not consider
        complete are stale and would poison a live merge, so they are
        removed; chunks adopted from a checkpoint are (re-)written so the
        live view covers them from the first poll (with ``elapsed_s``
        ``None`` — their original wall-clock cost is unknown).
        """
        if self.telemetry_dir is None:
            return
        self.telemetry_dir.mkdir(parents=True, exist_ok=True)
        keep = {snapshot_path(self.telemetry_dir, i).name for i in self._chunks}
        for path in sorted(self.telemetry_dir.glob("chunk-*.json")):
            if path.name not in keep:
                try:
                    path.unlink()
                except OSError:
                    logger.warning("could not remove stale snapshot %s", path)
        for chunk_index in sorted(self._chunks):
            self._write_snapshot(
                chunk_index, self._chunks[chunk_index], elapsed_s=None
            )

    def _report_progress(self) -> None:
        if self.progress is None:
            return
        sessions = sum(
            int(scheme_payload["sessions"])  # type: ignore[call-overload,index]
            for payload in self._chunks.values()
            for scheme_payload in payload["schemes"].values()  # type: ignore[union-attr,index]
        )
        self.progress(len(self._chunks), self.config.n_chunks, sessions)


def run_campaign(
    config: FleetConfig,
    checkpoint_path: Optional[Path] = None,
    jobs: Optional[int] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    telemetry_dir: Optional[Path] = None,
) -> CampaignAggregate:
    """One-call campaign: optionally resume, execute, return the total.

    ``resume=True`` requires a usable checkpoint for *this* campaign at
    ``checkpoint_path``; ``resume=False`` starts fresh, overwriting any
    checkpoint there.  ``telemetry_dir`` enables the live snapshot tap
    (see :mod:`repro.fleet.telemetry`).
    """
    campaign = FleetCampaign(
        config,
        checkpoint_path=checkpoint_path,
        progress=progress,
        telemetry_dir=telemetry_dir,
    )
    if resume:
        adopted = campaign.load_completed(require_checkpoint=True)
        logger.info("resuming campaign: %d/%d chunks already done", adopted, config.n_chunks)
    return campaign.run(jobs=jobs)


__all__ = [
    "CampaignMismatchError",
    "DEFAULT_SCHEMES",
    "FLEET_FORMAT_VERSION",
    "FleetCampaign",
    "FleetConfig",
    "run_campaign",
    "run_chunk",
]

"""Crash-tolerant campaign checkpoints.

A campaign at fleet scale runs for minutes to hours; an interruption
must not forfeit completed work.  The engine persists a JSON snapshot
after every ``checkpoint_every`` completed chunks:

* writes are atomic (``tempfile`` + ``os.replace``) so a kill mid-write
  leaves the previous snapshot intact, never a torn file;
* loads are defensive — any unreadable, truncated, or structurally
  wrong file is reported as "no checkpoint", never an exception;
* every snapshot embeds the campaign ``key`` (config + source
  fingerprint hash), so a checkpoint can never resume a *different*
  campaign: mismatches are surfaced to the caller, who decides whether
  that is an error (``resume``) or a fresh start (``run``).
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

logger = logging.getLogger(__name__)

#: Bump when the checkpoint layout changes; older files are ignored.
#: v2: chunk aggregate payloads carry a per-scheme "phases" section
#: (FFCT phase decomposition) that readers require.
CHECKPOINT_FORMAT_VERSION = 2


@dataclass
class CheckpointState:
    """One parsed checkpoint snapshot."""

    key: str
    config: Dict[str, object]
    n_chunks: int
    #: Completed chunk aggregates, keyed by chunk index.
    chunks: Dict[int, Dict[str, object]] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return len(self.chunks) == self.n_chunks

    def to_json(self) -> Dict[str, object]:
        return {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "key": self.key,
            "config": self.config,
            "n_chunks": self.n_chunks,
            "chunks": {str(index): payload for index, payload in sorted(self.chunks.items())},
        }


def atomic_write_json(path: Path, payload: object) -> bool:
    """Atomically persist ``payload`` as canonical JSON at ``path``.

    The one durability primitive of the fleet layer — checkpoints and
    telemetry snapshots both go through it: ``tempfile`` in the target
    directory + ``os.replace``, so a reader polling the path only ever
    sees the previous complete file or the new complete file, never a
    torn write.  Failures are logged and reported as ``False``, never
    raised — losing a snapshot must not kill a campaign.
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except Exception as exc:
        logger.warning("could not persist %s (%s)", path, exc)
        return False
    return True


def save_checkpoint(path: Path, state: CheckpointState) -> None:
    """Atomically persist ``state``; failures are logged, not raised."""
    atomic_write_json(path, state.to_json())


def load_checkpoint(path: Path) -> Optional[CheckpointState]:
    """Parse a checkpoint; any defect means ``None``, never a crash."""
    try:
        with path.open("r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return None
    except Exception as exc:
        logger.warning("ignoring unreadable checkpoint %s (%s)", path, exc)
        return None
    state = _parse(payload)
    if state is None:
        logger.warning("ignoring malformed checkpoint %s", path)
    return state


def _parse(payload: object) -> Optional[CheckpointState]:
    if not isinstance(payload, dict):
        return None
    if payload.get("format_version") != CHECKPOINT_FORMAT_VERSION:
        return None
    key = payload.get("key")
    config = payload.get("config")
    n_chunks = payload.get("n_chunks")
    chunks = payload.get("chunks")
    if (
        not isinstance(key, str)
        or not isinstance(config, dict)
        or not isinstance(n_chunks, int)
        or n_chunks < 1
        or not isinstance(chunks, dict)
    ):
        return None
    parsed: Dict[int, Dict[str, object]] = {}
    for index_str, chunk in chunks.items():
        try:
            index = int(index_str)
        except (TypeError, ValueError):
            return None
        if not isinstance(chunk, dict) or not 0 <= index < n_chunks:
            return None
        parsed[index] = chunk
    return CheckpointState(key=key, config=config, n_chunks=n_chunks, chunks=parsed)


__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointState",
    "atomic_write_json",
    "load_checkpoint",
    "save_checkpoint",
]

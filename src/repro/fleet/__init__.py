"""Fleet-scale campaign engine (10^5–10^6 sessions, bounded memory).

The figure-scale replay of :mod:`repro.experiments` materializes every
:class:`~repro.cdn.session.SessionResult`; fine for 10^2–10^3 chains,
hopeless for the fleet scale the paper's production deployment observes.
This package runs *campaigns*: chunked, process-sharded replays of an
index-addressable :class:`~repro.workload.population.FleetPopulation`
whose per-session results fold immediately into mergeable streaming
aggregates (:mod:`repro.fleet.aggregate`), with periodic atomic
checkpoints (:mod:`repro.fleet.checkpoint`) so interrupted campaigns
resume from the last completed chunk.  A running campaign is observable
live: the telemetry tap (:mod:`repro.fleet.telemetry`) writes one
mergeable snapshot per completed chunk, and the HTML renderer
(:mod:`repro.fleet.htmlreport`) turns a finished campaign into a
self-contained artifact.

Determinism contract: serial (``jobs=1``) and sharded (``jobs=N``)
campaigns — and resumed versus uninterrupted ones — produce
byte-identical reports (:mod:`repro.fleet.report`).

Typical use::

    from repro.fleet import FleetConfig, build_report, run_campaign
    from repro.workload import DeploymentConfig

    config = FleetConfig(population=DeploymentConfig(n_od_pairs=20_000, seed=1))
    total = run_campaign(config, checkpoint_path=Path("campaign.json"), jobs=8)
    report = build_report(total, config.key())

or the CLI: ``python -m tools.wira_fleet run --od-pairs 20000 ...``.
"""

from repro.fleet.aggregate import CampaignAggregate, SchemeAggregate, merge_chunks
from repro.fleet.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointState,
    atomic_write_json,
    load_checkpoint,
    save_checkpoint,
)
from repro.fleet.engine import (
    DEFAULT_SCHEMES,
    FLEET_FORMAT_VERSION,
    CampaignMismatchError,
    FleetCampaign,
    FleetConfig,
    run_campaign,
    run_chunk,
)
from repro.fleet.htmlreport import render_html_report
from repro.fleet.report import PERCENTILES, build_report, canonical_json, report_hash
from repro.fleet.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    LiveStatus,
    TelemetrySchemaError,
    TelemetrySnapshot,
    default_telemetry_dir,
    live_status,
    load_snapshot,
    merge_snapshots,
    scan_snapshots,
    write_snapshot,
)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CampaignAggregate",
    "CampaignMismatchError",
    "CheckpointState",
    "DEFAULT_SCHEMES",
    "FLEET_FORMAT_VERSION",
    "FleetCampaign",
    "FleetConfig",
    "LiveStatus",
    "PERCENTILES",
    "SchemeAggregate",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetrySchemaError",
    "TelemetrySnapshot",
    "atomic_write_json",
    "build_report",
    "canonical_json",
    "default_telemetry_dir",
    "live_status",
    "load_checkpoint",
    "load_snapshot",
    "merge_chunks",
    "merge_snapshots",
    "render_html_report",
    "report_hash",
    "run_campaign",
    "run_chunk",
    "save_checkpoint",
    "scan_snapshots",
    "write_snapshot",
]

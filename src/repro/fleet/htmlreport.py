"""Self-contained HTML campaign reports.

One campaign → one ``.html`` file an operator can open, attach to an
issue, or archive from CI — **no external assets**: styles, the CDF
chart (inline SVG), and the hover script are all embedded, built from
the standard library alone.

Content mirrors the JSON report (:mod:`repro.fleet.report`) and adds
what JSON cannot show: scheme-vs-scheme FFCT CDF strips rendered from
each scheme's :class:`~repro.metrics.sketch.QuantileSketch`, the FFCT
phase-decomposition table (when the campaign ran under ``WIRA_TRACE=1``),
and an optional live-telemetry throughput section.  Like the JSON
report, the HTML is deterministic — no timestamps, no host details —
so artifact bytes are comparable across CI runs of the same campaign.

The visual language follows the repo's chart conventions: categorical
series colors are assigned to schemes in fixed sorted order (never
cycled), text wears ink tokens (identity is carried by a colored swatch
beside the label, not by coloring the text), one axis pair, thin 2px
lines, and a dark mode that is its own validated palette, not a filter.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.fleet.aggregate import CampaignAggregate
from repro.obs.profiler import PHASES

#: Categorical series slots (light, dark) in fixed assignment order —
#: blue, orange, aqua, yellow.  Schemes take slots in sorted-name order;
#: a hypothetical fifth scheme would render uncolored, never a 5th hue.
SERIES_SLOTS: Tuple[Tuple[str, str], ...] = (
    ("#2a78d6", "#3987e5"),
    ("#eb6834", "#d95926"),
    ("#1baf7a", "#199e70"),
    ("#eda100", "#c98500"),
)

#: CDF sampling resolution (quantile steps per curve).
_CDF_POINTS = 64

# Chart geometry (SVG user units).
_PLOT_W = 560
_PLOT_H = 240
_MARGIN_L = 56
_MARGIN_R = 140
_MARGIN_T = 16
_MARGIN_B = 40
_SVG_W = _MARGIN_L + _PLOT_W + _MARGIN_R
_SVG_H = _MARGIN_T + _PLOT_H + _MARGIN_B


def _fmt_ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "–"
    return f"{seconds * 1000:.1f}ms"


def _fmt_pct(fraction: Optional[float]) -> str:
    if fraction is None:
        return "–"
    return f"{fraction * 100:.1f}%"


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _scheme_series(aggregate: CampaignAggregate) -> List[Tuple[str, List[Tuple[float, float]]]]:
    """(scheme, CDF series) per scheme with data, sorted by scheme name."""
    out: List[Tuple[str, List[Tuple[float, float]]]] = []
    for value in sorted(aggregate.schemes):
        sketch = aggregate.schemes[value].ffct_sketch
        if sketch.count == 0:
            continue
        out.append((value, sketch.cdf().series(_CDF_POINTS)))
    return out


def _nice_ceiling(value_ms: float) -> float:
    """Round up to a tidy axis maximum (1/2/2.5/5 × 10^k milliseconds)."""
    if value_ms <= 0:
        return 1.0
    magnitude = 1.0
    while magnitude * 10 <= value_ms:
        magnitude *= 10
    for factor in (1.0, 2.0, 2.5, 5.0, 10.0):
        if value_ms <= magnitude * factor:
            return magnitude * factor
    return magnitude * 10


def _cdf_chart(aggregate: CampaignAggregate) -> str:
    """Inline SVG: one FFCT CDF polyline per scheme, shared axes."""
    series = _scheme_series(aggregate)
    if not series:
        return (
            '<p class="placeholder">No completed sessions — '
            "no FFCT distribution to plot.</p>"
        )
    # X axis spans to the slowest scheme's ~p99.5 so the tail is visible
    # without letting a single max sample flatten every curve.
    xmax_ms = _nice_ceiling(
        max(s.quantile(0.995) for _, s in ((v, aggregate.schemes[v].ffct_sketch.cdf()) for v, _ in series)) * 1000.0
    )
    parts: List[str] = []
    parts.append(
        f'<svg class="cdf" viewBox="0 0 {_SVG_W} {_SVG_H}" role="img" '
        'aria-label="First-frame completion time CDF by scheme">'
    )
    # Gridlines + y ticks at 0/.25/.5/.75/1 — recessive hairlines.
    for i in range(5):
        q = i / 4
        y = _MARGIN_T + _PLOT_H * (1 - q)
        parts.append(
            f'<line class="grid" x1="{_MARGIN_L}" y1="{y:.1f}" '
            f'x2="{_MARGIN_L + _PLOT_W}" y2="{y:.1f}"/>'
        )
        parts.append(
            f'<text class="tick" x="{_MARGIN_L - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{q:.2f}</text>'
        )
    # X ticks at quarters of the axis maximum.
    for i in range(5):
        x = _MARGIN_L + _PLOT_W * i / 4
        value = xmax_ms * i / 4
        parts.append(
            f'<text class="tick" x="{x:.1f}" y="{_MARGIN_T + _PLOT_H + 18}" '
            f'text-anchor="middle">{value:.0f}</text>'
        )
    parts.append(
        f'<line class="axis" x1="{_MARGIN_L}" y1="{_MARGIN_T + _PLOT_H}" '
        f'x2="{_MARGIN_L + _PLOT_W}" y2="{_MARGIN_T + _PLOT_H}"/>'
    )
    parts.append(
        f'<text class="tick" x="{_MARGIN_L + _PLOT_W / 2:.1f}" '
        f'y="{_SVG_H - 4}" text-anchor="middle">FFCT (ms)</text>'
    )
    hover_data: List[Dict[str, object]] = []
    for slot, (scheme, points) in enumerate(series):
        coords: List[str] = []
        for value_s, q in points:
            value_ms = min(value_s * 1000.0, xmax_ms)
            x = _MARGIN_L + _PLOT_W * (value_ms / xmax_ms)
            y = _MARGIN_T + _PLOT_H * (1 - q)
            coords.append(f"{x:.1f},{y:.1f}")
        css = f"s{slot + 1}" if slot < len(SERIES_SLOTS) else "sx"
        parts.append(
            f'<polyline class="line {css}" points="{" ".join(coords)}"/>'
        )
        # Direct label at the curve's end: swatch carries identity, text
        # stays in ink.
        label_y = _MARGIN_T + 14 * slot + 10
        swatch_x = _MARGIN_L + _PLOT_W + 10
        parts.append(
            f'<line class="line {css}" x1="{swatch_x}" y1="{label_y - 4}" '
            f'x2="{swatch_x + 16}" y2="{label_y - 4}"/>'
        )
        parts.append(
            f'<text class="label" x="{swatch_x + 22}" y="{label_y}">'
            f"{_esc(scheme)}</text>"
        )
        hover_data.append(
            {
                "scheme": scheme,
                "points": [[round(v * 1000.0, 3), round(q, 4)] for v, q in points],
            }
        )
    parts.append('<line class="cursor" id="cdf-cursor" x1="0" y1="0" x2="0" y2="0" visibility="hidden"/>')
    parts.append("</svg>")
    parts.append('<div class="tooltip" id="cdf-tip" hidden></div>')
    payload = json.dumps(
        {
            "xmaxMs": xmax_ms,
            "plot": [_MARGIN_L, _MARGIN_T, _PLOT_W, _PLOT_H],
            "series": hover_data,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    parts.append(
        f'<script type="application/json" id="cdf-data">{payload}</script>'
    )
    return "\n".join(parts)


def _summary_table(report: Mapping[str, object]) -> str:
    schemes = report.get("schemes")
    if not isinstance(schemes, Mapping) or not schemes:
        return '<p class="placeholder">No scheme summaries.</p>'
    improvements = report.get("ffct_improvement_over_baseline")
    rows: List[str] = []
    for value in sorted(schemes):
        entry = schemes[value]
        if not isinstance(entry, Mapping):
            continue
        ffct = entry.get("ffct")
        ffct = ffct if isinstance(ffct, Mapping) else {}
        cells = [
            f"<th>{_esc(value)}</th>",
            f'<td>{_esc(entry.get("sessions", 0))}</td>',
            f'<td>{_fmt_pct(entry.get("completion_rate"))}</td>',  # type: ignore[arg-type]
            f'<td>{_fmt_ms(ffct.get("mean"))}</td>',  # type: ignore[arg-type]
            f'<td>{_fmt_ms(ffct.get("p50"))}</td>',  # type: ignore[arg-type]
            f'<td>{_fmt_ms(ffct.get("p90"))}</td>',  # type: ignore[arg-type]
            f'<td>{_fmt_ms(ffct.get("p99"))}</td>',  # type: ignore[arg-type]
        ]
        gain: Optional[object] = None
        if isinstance(improvements, Mapping):
            scheme_gain = improvements.get(value)
            if isinstance(scheme_gain, Mapping):
                gain = scheme_gain.get("p50")
        cells.append(
            f"<td>{_fmt_pct(gain)}</td>"  # type: ignore[arg-type]
            if gain is not None
            else "<td>–</td>"
        )
        rows.append("<tr>" + "".join(cells) + "</tr>")
    return (
        '<table><thead><tr><th>scheme</th><th>sessions</th>'
        "<th>completed</th><th>FFCT mean</th><th>p50</th><th>p90</th>"
        "<th>p99</th><th>p50 vs baseline</th></tr></thead>"
        "<tbody>" + "".join(rows) + "</tbody></table>"
    )


def _phase_section(report: Mapping[str, object]) -> str:
    schemes = report.get("schemes")
    if not isinstance(schemes, Mapping):
        return ""
    rows: List[str] = []
    for value in sorted(schemes):
        entry = schemes[value]
        if not isinstance(entry, Mapping):
            continue
        phases = entry.get("phases")
        if not isinstance(phases, Mapping):
            continue
        means = phases.get("mean")
        if not isinstance(means, Mapping):
            continue
        cells = [f"<th>{_esc(value)}</th>"]
        total = 0.0
        for name in PHASES:
            mean = means.get(name)
            cells.append(f"<td>{_fmt_ms(mean)}</td>")  # type: ignore[arg-type]
            if isinstance(mean, (int, float)):
                total += float(mean)
        cells.append(f"<td>{_fmt_ms(total)}</td>")
        rows.append("<tr>" + "".join(cells) + "</tr>")
    if not rows:
        return (
            '<p class="placeholder">No phase data — run the campaign '
            "with <code>WIRA_TRACE=1</code> to decompose FFCT into "
            "handshake / request / origin / transmit / stalls.</p>"
        )
    header = "".join(f"<th>{_esc(name)}</th>" for name in PHASES)
    return (
        "<table><thead><tr><th>scheme</th>"
        + header
        + "<th>total</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


def _config_rows(config: Optional[Mapping[str, object]]) -> str:
    if not isinstance(config, Mapping):
        return ""
    rows: List[str] = []
    population = config.get("population")
    if isinstance(population, Mapping):
        for key in sorted(population):
            rows.append(
                f"<tr><th>population.{_esc(key)}</th>"
                f"<td>{_esc(population[key])}</td></tr>"
            )
    for key in ("schemes", "chunk_chains", "checkpoint_every", "sketch_alpha"):
        if key in config:
            value = config[key]
            shown = ", ".join(map(str, value)) if isinstance(value, (list, tuple)) else value
            rows.append(f"<tr><th>{_esc(key)}</th><td>{_esc(shown)}</td></tr>")
    return "".join(rows)


def _telemetry_section(
    telemetry: Optional[Mapping[str, object]],
) -> str:
    if not isinstance(telemetry, Mapping):
        return ""
    rows: List[str] = []
    for key, label in (
        ("chunks_done", "chunks completed"),
        ("sessions", "sessions replayed"),
        ("elapsed_seconds", "wall-clock (s)"),
        ("sessions_per_second", "sessions / second"),
    ):
        value = telemetry.get(key)
        if value is None:
            continue
        shown = f"{value:.1f}" if isinstance(value, float) else str(value)
        rows.append(f"<tr><th>{_esc(label)}</th><td>{_esc(shown)}</td></tr>")
    if not rows:
        return ""
    return (
        "<h2>Live telemetry</h2><table class=\"kv\"><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


_STYLE = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-4: #eda100;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --series-4: #c98500;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --muted: #898781;
  --grid: #2c2c2a;
  --axis: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5;
  --series-2: #d95926;
  --series-3: #199e70;
  --series-4: #c98500;
}
body {
  margin: 0; padding: 2rem; background: var(--page);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 880px; margin: 0 auto; }
section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 1.25rem 1.5rem; margin-bottom: 1.25rem;
}
h1 { font-size: 1.3rem; margin: 0 0 .25rem; }
h2 { font-size: 1.05rem; margin: 1rem 0 .5rem; }
.key { color: var(--text-secondary); font-family: ui-monospace, monospace; font-size: .85rem; }
table { border-collapse: collapse; width: 100%; margin: .5rem 0; }
th, td {
  text-align: right; padding: .3rem .6rem;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th:first-child, td:first-child { text-align: left; }
thead th { color: var(--text-secondary); font-weight: 600; }
tbody th { color: var(--text-primary); font-weight: 500; }
table.kv th { width: 40%; }
.placeholder { color: var(--muted); }
svg.cdf { width: 100%; height: auto; display: block; }
svg.cdf .grid { stroke: var(--grid); stroke-width: 1; }
svg.cdf .axis { stroke: var(--axis); stroke-width: 1; }
svg.cdf .tick { fill: var(--muted); font-size: 11px; }
svg.cdf .label { fill: var(--text-secondary); font-size: 12px; }
svg.cdf .line { fill: none; stroke-width: 2; }
svg.cdf .line.s1 { stroke: var(--series-1); }
svg.cdf .line.s2 { stroke: var(--series-2); }
svg.cdf .line.s3 { stroke: var(--series-3); }
svg.cdf .line.s4 { stroke: var(--series-4); }
svg.cdf .line.sx { stroke: var(--muted); stroke-dasharray: 4 3; }
svg.cdf .cursor { stroke: var(--axis); stroke-width: 1; stroke-dasharray: 2 2; }
.tooltip {
  position: fixed; pointer-events: none; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 6px;
  padding: .4rem .6rem; font-size: 12px; color: var(--text-secondary);
  box-shadow: 0 2px 8px rgba(0,0,0,.15);
}
footer { color: var(--muted); font-size: .8rem; }
"""

_SCRIPT = """
(function () {
  var data = document.getElementById("cdf-data");
  var svg = document.querySelector("svg.cdf");
  var tip = document.getElementById("cdf-tip");
  var cursor = document.getElementById("cdf-cursor");
  if (!data || !svg || !tip || !cursor) return;
  var cfg = JSON.parse(data.textContent);
  var plot = cfg.plot;
  function atOrBelow(points, xMs) {
    var q = 0;
    for (var i = 0; i < points.length; i++) {
      if (points[i][0] <= xMs) q = points[i][1]; else break;
    }
    return q;
  }
  svg.addEventListener("mousemove", function (ev) {
    var rect = svg.getBoundingClientRect();
    var scale = rect.width / svg.viewBox.baseVal.width;
    var ux = (ev.clientX - rect.left) / scale;
    if (ux < plot[0] || ux > plot[0] + plot[2]) { tip.hidden = true; cursor.setAttribute("visibility", "hidden"); return; }
    var xMs = (ux - plot[0]) / plot[2] * cfg.xmaxMs;
    cursor.setAttribute("x1", ux); cursor.setAttribute("x2", ux);
    cursor.setAttribute("y1", plot[1]); cursor.setAttribute("y2", plot[1] + plot[3]);
    cursor.setAttribute("visibility", "visible");
    var lines = ["FFCT \\u2264 " + xMs.toFixed(1) + "ms"];
    cfg.series.forEach(function (s) {
      lines.push(s.scheme + ": " + (atOrBelow(s.points, xMs) * 100).toFixed(1) + "%");
    });
    tip.textContent = lines.join("  \\u00b7  ");
    tip.style.left = (ev.clientX + 14) + "px";
    tip.style.top = (ev.clientY + 14) + "px";
    tip.hidden = false;
  });
  svg.addEventListener("mouseleave", function () {
    tip.hidden = true;
    cursor.setAttribute("visibility", "hidden");
  });
})();
"""


def render_html_report(
    report: Mapping[str, object],
    aggregate: CampaignAggregate,
    config: Optional[Mapping[str, object]] = None,
    telemetry: Optional[Mapping[str, object]] = None,
    title: str = "Fleet campaign report",
    extra_sections: Optional[Sequence[str]] = None,
) -> str:
    """Render one campaign as a self-contained HTML document.

    ``report`` is the JSON report (:func:`~repro.fleet.report.build_report`),
    ``aggregate`` the merged campaign aggregate the CDF curves are drawn
    from, ``config`` the campaign's config JSON for the header, and
    ``telemetry`` an optional live-status payload (chunks, throughput).
    ``extra_sections`` are pre-rendered ``<section>`` blocks appended
    before the footer (serve mode adds its vs-sim comparison there).
    Deterministic: same inputs → same bytes.
    """
    key = report.get("campaign_key", "")
    total = report.get("total_sessions", 0)
    head = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8"/>',
        '<meta name="viewport" content="width=device-width, initial-scale=1"/>',
        f"<title>{_esc(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head>",
        "<body><main>",
        "<section>",
        f"<h1>{_esc(title)}</h1>",
        f'<p class="key">campaign {_esc(key)} · {_esc(total)} sessions · '
        f'sketch α={_esc(report.get("sketch_alpha", ""))}</p>',
    ]
    config_rows = _config_rows(config)
    if config_rows:
        head.append('<h2>Configuration</h2><table class="kv"><tbody>')
        head.append(config_rows)
        head.append("</tbody></table>")
    head.append("</section>")
    body = [
        "<section><h2>First-frame completion time — CDF by scheme</h2>",
        _cdf_chart(aggregate),
        "</section>",
        "<section><h2>Scheme summary</h2>",
        _summary_table(report),
        "<h2>FFCT phase breakdown (mean per session)</h2>",
        _phase_section(report),
        _telemetry_section(telemetry),
        "</section>",
        *(extra_sections or ()),
        "<footer>Generated by wira-fleet · deterministic artifact "
        "(no timestamps) · quantiles are DDSketch estimates "
        f"(α={_esc(report.get('sketch_alpha', ''))}).</footer>",
        f"<script>{_SCRIPT}</script>",
        "</main></body></html>",
    ]
    return "\n".join(head + body)


__all__ = [
    "SERIES_SLOTS",
    "render_html_report",
]

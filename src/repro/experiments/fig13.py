"""Fig 13 — FFCT benefits under different conditions.

The paper buckets sessions four ways and reports Wira's optimisation
ratio per bucket:

(a) by FF_Size (KB): gains grow with the first frame — 4.1 % at
    (30,50] up to 20.2 % at (80,150];
(b) by MinRTT (ms): gains of 6.6–12.7 % below 100 ms, degrading above
    (stale Hx_QoS hurts);
(c) by MaxBW (Mbps): best in (10,20] (9.4 %), modest at (20,60]
    (4.9 %), <2.8 % below 10 Mbps;
(d) by retransmission ratio: 8.6–17.2 % gains in the (1 %,10 %] band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.initializer import Scheme
from repro.experiments.common import (
    DeploymentRecords,
    EVAL_SCHEMES,
    HEADLINE_CONFIG,
    SessionOutcome,
)
from repro.experiments.runner import run_deployment
from repro.metrics.stats import mean

FF_BUCKETS_KB: Tuple[Tuple[float, float], ...] = ((0, 30), (30, 50), (50, 80), (80, 150), (150, 300))
RTT_BUCKETS_MS: Tuple[Tuple[float, float], ...] = ((0, 30), (30, 60), (60, 100), (100, 1000))
BW_BUCKETS_MBPS: Tuple[Tuple[float, float], ...] = ((0, 10), (10, 20), (20, 60), (60, 200))
RETX_BUCKETS_PCT: Tuple[Tuple[float, float], ...] = ((0, 1), (1, 10), (10, 30))


def _bucket_label(low: float, high: float) -> str:
    return f"({low:g},{high:g}]"


def _bucket_of(value: float, buckets) -> Optional[str]:
    for low, high in buckets:
        if low < value <= high or (value == 0 and low == 0):
            return _bucket_label(low, high)
    return None


@dataclass
class BucketedFfct:
    """Mean FFCT per (dimension bucket, scheme)."""

    dimension: str
    table: Dict[str, Dict[Scheme, List[float]]]

    def mean_ffct(self, bucket: str, scheme: Scheme) -> Optional[float]:
        samples = self.table.get(bucket, {}).get(scheme, [])
        return mean(samples) if samples else None

    def improvement(self, bucket: str, scheme: Scheme) -> Optional[float]:
        base = self.mean_ffct(bucket, Scheme.BASELINE)
        ours = self.mean_ffct(bucket, scheme)
        if base is None or ours is None or base == 0:
            return None
        return (base - ours) / base

    def buckets(self) -> List[str]:
        return [b for b in self.table if any(self.table[b].values())]


@dataclass
class Fig13Result:
    by_ff: BucketedFfct
    by_rtt: BucketedFfct
    by_bw: BucketedFfct
    by_retx: BucketedFfct


def _dimension_value(outcome: SessionOutcome, dimension: str) -> Optional[float]:
    result, spec = outcome.result, outcome.spec
    if dimension == "ff":
        return (result.ff_size_parsed or 0) / 1000.0
    if dimension == "rtt":
        return spec.conditions.rtt * 1000.0
    if dimension == "bw":
        return spec.conditions.bandwidth_bps / 1e6
    if dimension == "retx":
        return result.final_server_stats.data_loss_rate() * 100.0
    raise ValueError(dimension)


def _bucketize(records: DeploymentRecords, dimension: str, buckets) -> BucketedFfct:
    table: Dict[str, Dict[Scheme, List[float]]] = {
        _bucket_label(lo, hi): {s: [] for s in records} for lo, hi in buckets
    }
    # Bucket by the *baseline* replay's dimension value so the same
    # session lands in the same bucket for every scheme (paired view).
    baseline = records[Scheme.BASELINE]
    for index, base_outcome in enumerate(baseline):
        value = _dimension_value(base_outcome, dimension)
        if value is None:
            continue
        bucket = _bucket_of(value, buckets)
        if bucket is None:
            continue
        for scheme, outcomes in records.items():
            ffct = outcomes[index].result.ffct
            if ffct is not None:
                table[bucket][scheme].append(ffct)
    return BucketedFfct(dimension, table)


def summarize(records: DeploymentRecords) -> Fig13Result:
    return Fig13Result(
        by_ff=_bucketize(records, "ff", FF_BUCKETS_KB),
        by_rtt=_bucketize(records, "rtt", RTT_BUCKETS_MS),
        by_bw=_bucketize(records, "bw", BW_BUCKETS_MBPS),
        by_retx=_bucketize(records, "retx", RETX_BUCKETS_PCT),
    )


def run(config=None) -> Fig13Result:
    records = run_deployment(config or HEADLINE_CONFIG, EVAL_SCHEMES)
    return summarize(records)

"""Shared machinery for the evaluation experiments.

``run_deployment`` plays every session chain of a
:class:`~repro.workload.population.Deployment` under each comparison
scheme, keeping the paired structure the paper's A/B tests have: the
same OD pairs, streams, conditions and loss randomness are replayed per
scheme; only the initialisation policy differs.  Cookies persist along
each chain through the client's store, so first sessions are cookie-less
and long gaps go stale — exactly the populations §VI aggregates over.

Results are cached per configuration: Figs 11–15 all read the same
deployment run.  The replay itself — including process-pool sharding and
the persistent on-disk cache — lives in
:mod:`repro.experiments.runner`; :func:`run_deployment` here is a thin
delegate kept for backwards compatibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cdn.origin import Origin
from repro.cdn.session import SessionResult, SessionSpec, StreamingSession
from repro.core.config import WiraConfig
from repro.core.initializer import InitialParams, Scheme
from repro.core.schemes import (
    InitPolicy,
    SchemeLike,
    SchemeSpec,
    as_spec,
    eval_schemes,
    make_policy,
)
from repro.core.transport_cookie import ClientCookieStore, ServerCookieManager
from repro.quic.config import QuicConfig
from repro.quic.connection import HandshakeMode
from repro.simnet.path import NetworkConditions
from repro.workload.population import DeploymentConfig, PlannedSession

COOKIE_KEY = b"wira-deployment-cookie-key-32b!!"

#: The headline comparison set, in registry order (single source of
#: truth for scheme ordering and labels is :mod:`repro.core.schemes`).
EVAL_SCHEMES: Tuple[SchemeSpec, ...] = eval_schemes()

#: Deployment used by the Fig 11–15 benchmarks.  One run is shared —
#: the cache hands the same records to every figure.
HEADLINE_CONFIG = DeploymentConfig(n_od_pairs=120, seed=42)


@dataclass(frozen=True)
class SessionOutcome:
    """One (planned session, result) pair of a deployment replay."""

    spec: PlannedSession
    result: SessionResult


DeploymentRecords = Dict[SchemeLike, List[SessionOutcome]]


def run_deployment(
    config: Optional[DeploymentConfig] = None,
    schemes: Sequence[SchemeLike] = EVAL_SCHEMES,
    wira_config: Optional[WiraConfig] = None,
    use_cache: bool = True,
    jobs: Optional[int] = None,
    disk_cache: Optional[bool] = None,
) -> DeploymentRecords:
    """Replay the deployment under each scheme; returns paired records.

    Delegates to :func:`repro.experiments.runner.run_deployment`, which
    adds process-pool sharding (``jobs`` / ``WIRA_JOBS``) and a
    persistent result cache (``WIRA_CACHE_DIR`` / ``WIRA_DISK_CACHE``)
    on top of the original serial replay.
    """
    from repro.experiments.runner import run_deployment as _run

    return _run(
        config=config,
        schemes=schemes,
        wira_config=wira_config,
        use_cache=use_cache,
        jobs=jobs,
        disk_cache=disk_cache,
    )


def chain_cookie_manager(chain_index: int, wira_config: WiraConfig) -> ServerCookieManager:
    """The per-chain cookie manager, nonce-salted by chain index.

    All chains share :data:`COOKIE_KEY` (one deployment, one key) and
    every manager's nonce counter starts at 0, so without a per-chain
    salt two chains would seal under colliding nonces — the same
    two-time-pad bug the sharded serve edge hit.  The salt depends only
    on the chain index, so serial and process-pool replays stay
    byte-identical.
    """
    return ServerCookieManager(
        COOKIE_KEY,
        staleness_delta=wira_config.staleness_delta,
        instance_salt=b"chain:%d" % chain_index,
    )


def session_spec_for(
    planned: PlannedSession,
    scheme: SchemeLike,
    chain_index: int,
    config: DeploymentConfig,
    wira_config: WiraConfig,
) -> SessionSpec:
    """The :class:`SessionSpec` that replays one planned session."""
    spec = as_spec(scheme)
    return SessionSpec(
        conditions=planned.conditions,
        scheme=spec,
        handshake_mode=planned.handshake_mode,
        epoch=planned.epoch,
        seed=planned.seed,
        target_video_frames=config.video_frames_per_session,
        wira_config=wira_config,
        schedule=planned.schedule,
        trace_label=f"{spec.value}-c{chain_index}-s{planned.session_index}",
    )


def chain_policy(
    scheme: SchemeLike, chain_index: int, config: DeploymentConfig
) -> InitPolicy:
    """The per-chain policy instance, deterministically seeded.

    One policy lives for one OD pair's chain — that is the state scope
    online schemes learn over.  The seed is a pure function of the
    deployment seed and chain index, so serial, process-pool and
    wave-batched replays hand every chain an identical policy.
    """
    seed = random.Random(f"policy:{config.seed}:{chain_index}").getrandbits(48)
    return make_policy(scheme, seed=seed)


def iter_chain_outcomes(
    scheme: SchemeLike,
    chain: List[PlannedSession],
    chain_index: int,
    config: DeploymentConfig,
    wira_config: WiraConfig,
) -> Iterator[SessionOutcome]:
    """Replay one chain, yielding each outcome as it completes.

    The generator form is what lets the fleet engine fold outcomes into
    aggregates without ever retaining them; :func:`_run_chain` is the
    figure-scale wrapper that still materializes the list.
    """
    store = ClientCookieStore()
    manager = chain_cookie_manager(chain_index, wira_config)
    origin = Origin()
    stream_name = f"stream-{chain_index}"
    origin.add_stream(stream_name, chain[0].stream_profile)
    policy = chain_policy(scheme, chain_index, config)
    for planned in chain:
        session = StreamingSession.from_spec(
            session_spec_for(planned, scheme, chain_index, config, wira_config),
            origin,
            stream_name,
            cookie_store=store,
            cookie_manager=manager,
            init_policy=policy,
        )
        result = session.run()
        policy.observe(result)
        yield SessionOutcome(planned, result)


def _run_chain(
    scheme: SchemeLike,
    chain: List[PlannedSession],
    chain_index: int,
    config: DeploymentConfig,
    wira_config: WiraConfig,
) -> List[SessionOutcome]:
    return list(iter_chain_outcomes(scheme, chain, chain_index, config, wira_config))


#: Ceiling on chains per wave-batch.  Replay sessions are heavyweight
#: (full QUIC state machines, GOP buffers), so a wave's working set
#: grows with its member count and the per-event cost climbs once it
#: outgrows the cache — a 120-member wave measured ~15% slower per
#: session than 16-member waves on the headline deployment.  Sessions
#: in distinct groups never interact, so slicing is invisible in the
#: results (asserted by the byte-identity tests).
WAVE_CHAINS = 16


def replay_chains_wave_batched(
    scheme: SchemeLike,
    chains: Sequence[List[PlannedSession]],
    base_index: int,
    config: DeploymentConfig,
    wira_config: WiraConfig,
) -> List[List[SessionOutcome]]:
    """Wave-batched replay of many chains; per-chain outcome lists.

    Chains advance in lock-step waves — wave *k* batches the *k*-th
    session of every chain that has one into a single
    :class:`~repro.simnet.batch.BatchEventLoop` via
    :func:`~repro.cdn.batchrun.run_sessions`.  Sessions in a wave belong
    to distinct chains, so each owns its cookie store, origin and rng
    stream; within a chain the cookie hand-off still happens strictly in
    session order, exactly as the solo loop does it.  The result is
    byte-identical to running :func:`iter_chain_outcomes` per chain.

    Large chain blocks are sliced into groups of :data:`WAVE_CHAINS`
    (each group runs its own wave sequence to completion) to keep the
    per-wave working set cache-resident.
    """
    if len(chains) > WAVE_CHAINS:
        per_chain: List[List[SessionOutcome]] = []
        for lo in range(0, len(chains), WAVE_CHAINS):
            per_chain.extend(
                replay_chains_wave_batched(
                    scheme,
                    chains[lo : lo + WAVE_CHAINS],
                    base_index + lo,
                    config,
                    wira_config,
                )
            )
        return per_chain

    from repro.cdn.batchrun import run_sessions

    environments = []
    for offset, chain in enumerate(chains):
        store = ClientCookieStore()
        manager = chain_cookie_manager(base_index + offset, wira_config)
        origin = Origin()
        stream_name = f"stream-{base_index + offset}"
        origin.add_stream(stream_name, chain[0].stream_profile)
        policy = chain_policy(scheme, base_index + offset, config)
        environments.append((store, manager, origin, stream_name, policy))

    per_chain: List[List[SessionOutcome]] = [[] for _ in chains]
    wave = 0
    while True:
        todo = [i for i, chain in enumerate(chains) if len(chain) > wave]
        if not todo:
            break
        sessions = []
        for i in todo:
            store, manager, origin, stream_name, policy = environments[i]
            sessions.append(
                StreamingSession.from_spec(
                    session_spec_for(
                        chains[i][wave], scheme, base_index + i, config, wira_config
                    ),
                    origin,
                    stream_name,
                    cookie_store=store,
                    cookie_manager=manager,
                    init_policy=policy,
                )
            )
        # Wave k+1 sessions are only built after every wave-k result has
        # been observed, so a chain's policy sees exactly the same
        # (observe → initial_params) order as the solo replay.
        for i, result in zip(todo, run_sessions(sessions)):
            per_chain[i].append(SessionOutcome(chains[i][wave], result))
            environments[i][4].observe(result)
        wave += 1
    return per_chain


def run_testbed_session(
    initial_params: InitialParams,
    conditions: Optional[NetworkConditions] = None,
    ff_target: int = 66_000,
    seed: int = 0,
    target_video_frames: int = 4,
) -> SessionResult:
    """One controlled testbed session with pinned initial parameters.

    Defaults reproduce the paper's testbed (§II footnote 2): 8 Mbps,
    3 % loss, 50 ms RTT, 25 KB buffer, and the Fig 2(a) 66 KB first
    frame.
    """
    from repro.media.source import StreamProfile

    conditions = conditions or NetworkConditions(
        bandwidth_bps=8_000_000.0, rtt=0.050, loss_rate=0.03, buffer_bytes=25_000
    )
    origin = Origin()
    origin.add_stream(
        "testbed",
        StreamProfile(
            first_frame_target_bytes=ff_target,
            complexity_sigma=0.01,
            size_jitter=0.01,
            seed=17,
        ),
    )
    spec = SessionSpec(
        conditions=conditions,
        scheme=Scheme.BASELINE,  # ignored: override pins the values
        handshake_mode=HandshakeMode.ZERO_RTT,
        seed=seed,
        target_video_frames=target_video_frames,
        initial_params_override=initial_params,
        client_supports_cookies=False,
    )
    return StreamingSession.from_spec(spec, origin, "testbed").run()


def manual_params(cwnd_bytes: int, pacing_bps: float) -> InitialParams:
    """Explicit (cwnd, pacing) for testbed sweeps."""
    return InitialParams(
        cwnd_bytes=cwnd_bytes,
        pacing_bps=pacing_bps,
        used_ff_size=False,
        used_hx_qos=False,
        provisional=False,
    )

"""Fig 3 — QoS dispersion *within* user groups.

The paper measures, per user group (same network type + geography + AS),
the coefficient of variation of MinRTT and MaxBW across the group's
connections inside 5-minute windows: average CVs of 36.4 % (MinRTT) and
51.6 % (MaxBW), with ~50 % of MinRTT CVs above 20 % but only 12.8 % of
MaxBW CVs *below* 20 % — i.e. UG-level estimates are coarse.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.metrics.stats import Cdf, coefficient_of_variation, mean
from repro.workload.network import NetworkModel


@dataclass
class Fig3Result:
    rtt_cvs: List[float]
    bw_cvs: List[float]

    @property
    def avg_rtt_cv(self) -> float:
        return mean(self.rtt_cvs)

    @property
    def avg_bw_cv(self) -> float:
        return mean(self.bw_cvs)

    @property
    def frac_rtt_cv_above_20pct(self) -> float:
        return Cdf(self.rtt_cvs).fraction_above(0.20)

    @property
    def frac_bw_cv_below_20pct(self) -> float:
        return Cdf(self.bw_cvs).at(0.20)


def run(n_groups: int = 300, connections_per_group: int = 40, seed: int = 13) -> Fig3Result:
    model = NetworkModel(random.Random(seed))
    session_rng = random.Random(seed + 1)
    rtt_cvs, bw_cvs = [], []
    for _ in range(n_groups):
        group = model.sample_user_group()
        rtts, bws = [], []
        for _ in range(connections_per_group):
            od = model.sample_od_pair(group)
            cond = od.conditions_at(session_rng, interval_minutes=5.0)
            rtts.append(cond.rtt)
            bws.append(cond.bandwidth_bps)
        rtt_cvs.append(coefficient_of_variation(rtts))
        bw_cvs.append(coefficient_of_variation(bws))
    return Fig3Result(rtt_cvs, bw_cvs)

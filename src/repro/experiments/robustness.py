"""Graceful-degradation gates: scheme × fault × schedule matrix.

§IV-C's safety claim is behavioural: whatever happens to the cookie, the
parser or the path, Wira must *degrade* — never fail, and never fall
meaningfully behind the baseline it is supposed to improve on.  This
module turns that claim into an executable gate:

* every cell of the (scheme × fault × adverse-schedule) matrix runs a
  two-session chain on the simulator — the first session primes the
  client's cookie store, the second carries the fault and the adverse
  schedule, so cookie faults hit a *real* echoed cookie;
* **completion gate** — every session of every cell must complete;
* **degradation gate** — for each (fault, schedule) cell, Wira's mean
  FFCT across the seed set must stay within ``ffct_ratio_bound`` of
  BASELINE's under the *same* fault, schedule and seeds.

Cells are independent, so the matrix shards across a process pool the
same way the deployment replay does (``--jobs`` / ``WIRA_JOBS``), with
results merged in deterministic cell order — a parallel run is
bit-identical to a serial one.  Any pool failure falls back to the
serial path.

CLI::

    python -m repro.experiments.robustness [--quick] [--jobs N]
        [--bound 1.5] [--output report.json]

exits non-zero when a gate fails and writes a JSON gate report suitable
for CI artifact upload.
"""

from __future__ import annotations

import argparse
import json
import logging
import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdn.origin import Origin
from repro.cdn.session import SessionSpec, StreamingSession
from repro.core.initializer import Scheme
from repro.core.schemes import SchemeLike, SchemeSpec, as_spec
from repro.core.transport_cookie import ClientCookieStore, ServerCookieManager
from repro.faults import FaultPlan, single_fault_plans
from repro.media.source import StreamProfile
from repro.simnet.path import NetworkConditions
from repro.simnet.schedule import GilbertElliott, OutageWindow, PathSchedule
from repro.simnet.trace import ConditionTrace, TracePoint

logger = logging.getLogger(__name__)

COOKIE_KEY = b"wira-robustness-cookie-key-32b!!"

#: Simulated-seconds gap between the priming and the measured session —
#: short enough that the primed cookie is always fresh.
SESSION_GAP = 5.0

#: Testbed-like base path (§II footnote 2, without the Bernoulli loss:
#: the adverse schedules supply the loss regimes under test).
DEFAULT_CONDITIONS = NetworkConditions(
    bandwidth_bps=8_000_000.0, rtt=0.050, loss_rate=0.0, buffer_bytes=25_000
)

MATRIX_SCHEMES: Tuple[SchemeLike, ...] = (
    Scheme.BASELINE,
    Scheme.WIRA_FF,
    Scheme.WIRA_HX,
    Scheme.WIRA,
    as_spec("adaptive"),
    as_spec("wira_bbr2"),
    as_spec("wira_ar"),
)

#: Per-schedule degradation-bound overrides (effective bound is the max
#: of the global bound and the override).  A total mid-transfer outage
#: punishes whichever sender had the most in flight when the link cut —
#: on these paths the baseline can slide under the outage by sheer
#: slowness while Wira's front-loaded burst is eaten and must wait out
#: PTO recovery.  That asymmetry is a property of the scenario, not a
#: Wira defect, so the outage schedules only gate against unbounded
#: stalls rather than against losing the head start.
SCHEDULE_BOUND_OVERRIDES: Dict[str, float] = {"flap": 8.0, "surge_flap": 8.0}

#: Per-fault overrides, same max-combination rule.  An adversarial
#: FF_Size of 0/1 byte collapses the initial window to the RFC 6928
#: floor (``WiraConfig.min_initial_cwnd_packets``) — and for Wira(FF),
#: whose pacing is ``init_cwnd / init_RTT``, the rate with it — so the
#: FF-trusting schemes degrade to a stock-kernel slow start while the
#: baseline keeps its experiential window.  A multi-MB FF_Size is
#: clamped by ``max_initial_cwnd_bytes`` but still overruns the
#: bottleneck buffer and pays retransmissions.  Both are constant-factor
#: costs by construction; the bounds check the floors/ceilings are
#: doing their job (without them these cells are 3–6× or unbounded).
FAULT_BOUND_OVERRIDES: Dict[str, float] = {
    "ff_size_zero": 4.0,
    "ff_size_tiny": 4.0,
    "ff_size_huge": 2.5,
}


def build_schedules(
    conditions: NetworkConditions,
) -> Dict[str, Optional[PathSchedule]]:
    """The adverse-path schedule set, anchored to ``conditions``.

    Each schedule targets one degradation mode a stale or adversarial
    cookie makes dangerous: a bandwidth collapse (the historical MaxBW
    overshoots), a surge (it undershoots), bursty Gilbert–Elliott loss,
    reordering/duplication, and a mid-handshake link flap.
    """
    collapse = conditions.scaled(bandwidth_factor=0.25)
    surge = conditions.scaled(bandwidth_factor=4.0)
    return {
        "steady": None,
        "bw_collapse": PathSchedule(
            trace=ConditionTrace(
                [TracePoint(0.0, conditions), TracePoint(0.05, collapse)]
            )
        ),
        "bw_surge": PathSchedule(
            trace=ConditionTrace(
                [TracePoint(0.0, collapse), TracePoint(0.05, conditions)]
            )
        ),
        "bursty_ge": PathSchedule(
            gilbert_elliott=GilbertElliott(
                p_good_to_bad=0.02, p_bad_to_good=0.3, loss_bad=0.5
            )
        ),
        "reorder_dup": PathSchedule(
            reorder_rate=0.10, reorder_delay=0.02, duplicate_rate=0.05
        ),
        "flap": PathSchedule(outages=(OutageWindow(start=0.05, duration=0.1),)),
        "surge_flap": PathSchedule(
            trace=ConditionTrace(
                [TracePoint(0.0, collapse), TracePoint(0.08, conditions)]
            ),
            outages=(OutageWindow(start=0.03, duration=0.05),),
        ),
    }


def fault_plan_matrix() -> Dict[str, Optional[FaultPlan]]:
    """Fault axis: every single-fault plan plus the no-fault control."""
    plans: Dict[str, Optional[FaultPlan]] = {"none": None}
    plans.update(single_fault_plans())
    return plans


@dataclass(frozen=True)
class RobustnessConfig:
    """Scale and gate knobs for one matrix run."""

    seeds: Tuple[int, ...] = (7, 19)
    schemes: Tuple[SchemeLike, ...] = MATRIX_SCHEMES
    schedule_names: Optional[Tuple[str, ...]] = None  # None = all
    fault_names: Optional[Tuple[str, ...]] = None  # None = all
    conditions: NetworkConditions = DEFAULT_CONDITIONS
    #: Degradation gate: mean(FFCT scheme) ≤ bound × mean(FFCT BASELINE)
    #: under the same fault/schedule/seeds.
    ffct_ratio_bound: float = 1.5
    stream_seed: int = 17
    timeout: float = 30.0

    @classmethod
    def quick(cls) -> "RobustnessConfig":
        """Reduced scale for CI: one seed, the two gate-relevant schemes."""
        return cls(
            seeds=(7,),
            schemes=(
                Scheme.BASELINE,
                Scheme.WIRA,
                as_spec("adaptive"),
                as_spec("wira_bbr2"),
                as_spec("wira_ar"),
            ),
            schedule_names=("steady", "bw_collapse", "bursty_ge", "flap"),
        )


#: One matrix coordinate: (scheme, fault name, schedule name, seed).
Cell = Tuple[SchemeSpec, str, str, int]


@dataclass(frozen=True)
class CellResult:
    """Outcome of one cell's two-session chain."""

    scheme: SchemeSpec
    fault: str
    schedule: str
    seed: int
    primed_completed: bool
    completed: bool
    ffct: Optional[float]
    used_cookie: bool
    fault_summary: Optional[Dict[str, int]]

    def to_json(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme.value,
            "fault": self.fault,
            "schedule": self.schedule,
            "seed": self.seed,
            "primed_completed": self.primed_completed,
            "completed": self.completed,
            "ffct": self.ffct,
            "used_cookie": self.used_cookie,
            "fault_summary": self.fault_summary,
        }


def run_cell(
    scheme: SchemeSpec,
    fault_name: str,
    plan: Optional[FaultPlan],
    schedule_name: str,
    schedule: Optional[PathSchedule],
    seed: int,
    config: RobustnessConfig,
) -> CellResult:
    """Two-session chain: prime the cookie clean, then measure faulted."""
    origin = Origin()
    origin.add_stream("stream", StreamProfile(seed=config.stream_seed))
    store = ClientCookieStore()
    manager = ServerCookieManager(COOKIE_KEY)
    prime_spec = SessionSpec(
        conditions=config.conditions,
        scheme=scheme,
        epoch=0.0,
        seed=seed,
        timeout=config.timeout,
        trace_label=f"rb-{scheme.value}-{fault_name}-{schedule_name}-s{seed}-prime",
    )
    primed = StreamingSession.from_spec(
        prime_spec, origin, "stream", cookie_store=store, cookie_manager=manager
    ).run()
    measured_spec = prime_spec.with_(
        epoch=SESSION_GAP,
        seed=seed + 1,
        fault_plan=plan,
        schedule=schedule,
        trace_label=f"rb-{scheme.value}-{fault_name}-{schedule_name}-s{seed}",
    )
    measured = StreamingSession.from_spec(
        measured_spec, origin, "stream", cookie_store=store, cookie_manager=manager
    ).run()
    return CellResult(
        scheme=scheme,
        fault=fault_name,
        schedule=schedule_name,
        seed=seed,
        primed_completed=primed.completed,
        completed=measured.completed,
        ffct=measured.ffct,
        used_cookie=measured.used_cookie,
        fault_summary=measured.fault_summary,
    )


# ---------------------------------------------------------------------------
# Matrix execution (serial reference path + process-pool sharding).


def enumerate_cells(config: RobustnessConfig) -> List[Cell]:
    """Deterministic cell order; parallel results merge back into it."""
    schedules = build_schedules(config.conditions)
    faults = fault_plan_matrix()
    schedule_names = config.schedule_names or tuple(schedules)
    fault_names = config.fault_names or tuple(faults)
    unknown = set(schedule_names) - set(schedules)
    if unknown:
        raise ValueError(f"unknown schedule(s): {sorted(unknown)}")
    unknown = set(fault_names) - set(faults)
    if unknown:
        raise ValueError(f"unknown fault(s): {sorted(unknown)}")
    return [
        (as_spec(scheme), fault_name, schedule_name, seed)
        for scheme in config.schemes
        for fault_name in fault_names
        for schedule_name in schedule_names
        for seed in config.seeds
    ]


def _run_cell_unit(unit: Tuple[Cell, RobustnessConfig]) -> CellResult:
    (scheme, fault_name, schedule_name, seed), config = unit
    plan = fault_plan_matrix()[fault_name]
    schedule = build_schedules(config.conditions)[schedule_name]
    return run_cell(scheme, fault_name, plan, schedule_name, schedule, seed, config)


def run_matrix(
    config: Optional[RobustnessConfig] = None, jobs: Optional[int] = None
) -> List[CellResult]:
    """Run every cell; order (and content) is independent of ``jobs``."""
    from repro.experiments.runner import resolve_jobs

    config = config or RobustnessConfig()
    cells = enumerate_cells(config)
    units = [(cell, config) for cell in cells]
    workers = resolve_jobs(jobs)
    if workers > 1:
        try:
            return _run_parallel(units, workers)
        except Exception as exc:
            logger.warning(
                "parallel robustness matrix with %d workers failed (%s); "
                "falling back to serial",
                workers,
                exc,
            )
    return [_run_cell_unit(unit) for unit in units]


def _run_parallel(
    units: List[Tuple[Cell, RobustnessConfig]], workers: int
) -> List[CellResult]:
    mp_context = None
    if "fork" in multiprocessing.get_all_start_methods():
        mp_context = multiprocessing.get_context("fork")
    chunksize = max(1, len(units) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers, mp_context=mp_context) as pool:
        # pool.map preserves input order, which IS the deterministic
        # enumerate_cells order — no re-sort needed.
        return list(pool.map(_run_cell_unit, units, chunksize=chunksize))


# ---------------------------------------------------------------------------
# Gates and report.


def evaluate_gates(
    results: Sequence[CellResult], config: RobustnessConfig
) -> Dict[str, object]:
    """Apply the completion and degradation gates; returns the report."""
    failures: List[str] = []
    for cell in results:
        if not cell.primed_completed or not cell.completed:
            failures.append(
                f"incomplete session: scheme={cell.scheme.value} "
                f"fault={cell.fault} schedule={cell.schedule} seed={cell.seed}"
            )

    # Mean FFCT per (scheme, fault, schedule) across the seed axis.
    sums: Dict[Tuple[Scheme, str, str], List[float]] = {}
    for cell in results:
        if cell.ffct is not None:
            sums.setdefault((cell.scheme, cell.fault, cell.schedule), []).append(
                cell.ffct
            )
    means = {key: sum(v) / len(v) for key, v in sums.items()}

    ratio_gates: List[Dict[str, object]] = []
    gated_schemes = [as_spec(s) for s in config.schemes if as_spec(s) != Scheme.BASELINE]
    for scheme in gated_schemes:
        for (mscheme, fault, schedule), mean_ffct in sorted(
            means.items(), key=lambda kv: (kv[0][0].value, kv[0][1], kv[0][2])
        ):
            if mscheme != scheme:
                continue
            baseline = means.get((Scheme.BASELINE, fault, schedule))
            if baseline is None or baseline <= 0.0:
                continue
            ratio = mean_ffct / baseline
            bound = max(
                config.ffct_ratio_bound,
                SCHEDULE_BOUND_OVERRIDES.get(schedule, 0.0),
                FAULT_BOUND_OVERRIDES.get(fault, 0.0),
            )
            ok = ratio <= bound
            ratio_gates.append(
                {
                    "scheme": scheme.value,
                    "fault": fault,
                    "schedule": schedule,
                    "mean_ffct": mean_ffct,
                    "baseline_mean_ffct": baseline,
                    "ratio": ratio,
                    "bound": bound,
                    "passed": ok,
                }
            )
            if not ok:
                failures.append(
                    f"FFCT degradation: {scheme.value} under fault={fault} "
                    f"schedule={schedule} is {ratio:.2f}x baseline "
                    f"(bound {bound:.2f}x)"
                )

    return {
        "config": {
            "seeds": list(config.seeds),
            "schemes": [as_spec(s).value for s in config.schemes],
            "ffct_ratio_bound": config.ffct_ratio_bound,
            "cells": len(results),
        },
        "cells": [cell.to_json() for cell in results],
        "ratio_gates": ratio_gates,
        "failures": failures,
        "passed": not failures,
    }


def run_robustness(
    config: Optional[RobustnessConfig] = None, jobs: Optional[int] = None
) -> Dict[str, object]:
    """Run the matrix and gate it; returns the JSON-ready report."""
    config = config or RobustnessConfig()
    results = run_matrix(config, jobs=jobs)
    return evaluate_gates(results, config)


# ---------------------------------------------------------------------------
# CLI.


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the robustness gate matrix (scheme × fault × schedule)."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced scale (one seed, BASELINE+WIRA, four schedules) for CI",
    )
    parser.add_argument("--jobs", type=int, default=None, help="worker processes")
    parser.add_argument(
        "--bound", type=float, default=None, help="override the FFCT ratio bound"
    )
    parser.add_argument(
        "--output", type=str, default=None, help="write the JSON gate report here"
    )
    args = parser.parse_args(argv)

    config = RobustnessConfig.quick() if args.quick else RobustnessConfig()
    if args.bound is not None:
        from dataclasses import replace

        config = replace(config, ffct_ratio_bound=args.bound)

    report = run_robustness(config, jobs=args.jobs)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")

    gates = report["ratio_gates"]
    print(f"robustness matrix: {report['config']['cells']} cells")  # noqa: T201
    assert isinstance(gates, list)
    for gate in gates:
        marker = "ok  " if gate["passed"] else "FAIL"
        print(  # noqa: T201
            f"  [{marker}] {gate['scheme']:8s} fault={gate['fault']:18s} "
            f"schedule={gate['schedule']:12s} ratio={gate['ratio']:.2f} "
            f"(bound {gate['bound']:.2f})"
        )
    failures = report["failures"]
    assert isinstance(failures, list)
    for failure in failures:
        print(f"  GATE FAILURE: {failure}")  # noqa: T201
    print("PASSED" if report["passed"] else "FAILED")  # noqa: T201
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())

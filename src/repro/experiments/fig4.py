"""Fig 4 — QoS stability *within* the same OD pair.

Per OD pair, the CV of MinRTT/MaxBW across repeat sessions at bounded
intervals.  Paper findings reproduced here:

(i)   average MinRTT CV grows slowly with the interval:
      9.9 / 10.2 / 10.5 / 11.2 % at (0,5] / (0,10] / (0,30] / (0,60] min;
(ii)  ~80 % of OD pairs keep MinRTT CV below ≈14–16 %;
(iii) MaxBW is noisier — its median CV exceeds 22.6 %;
(iv)  both are far more stable than the same metrics within a UG
      (compare Fig 3's 36.4 % / 51.6 %).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.metrics.stats import Cdf, coefficient_of_variation, mean, percentile
from repro.workload.network import NetworkModel

INTERVALS_MINUTES = (5.0, 10.0, 30.0, 60.0)


@dataclass
class IntervalDispersion:
    interval_minutes: float
    rtt_cvs: List[float]
    bw_cvs: List[float]

    @property
    def avg_rtt_cv(self) -> float:
        return mean(self.rtt_cvs)

    @property
    def avg_bw_cv(self) -> float:
        return mean(self.bw_cvs)

    @property
    def p80_rtt_cv(self) -> float:
        return percentile(self.rtt_cvs, 80)

    @property
    def p50_bw_cv(self) -> float:
        return percentile(self.bw_cvs, 50)


@dataclass
class Fig4Result:
    by_interval: Dict[float, IntervalDispersion] = field(default_factory=dict)

    def avg_rtt_cvs(self) -> List[float]:
        return [self.by_interval[i].avg_rtt_cv for i in INTERVALS_MINUTES]


def run(n_od_pairs: int = 250, sessions_per_od: int = 16, seed: int = 17) -> Fig4Result:
    model = NetworkModel(random.Random(seed))
    ods = [model.sample_od_pair() for _ in range(n_od_pairs)]
    result = Fig4Result()
    for interval in INTERVALS_MINUTES:
        rtt_cvs, bw_cvs = [], []
        for i, od in enumerate(ods):
            rng = random.Random(f"fig4:{seed}:{interval}:{i}")
            conds = [od.conditions_at(rng, interval_minutes=interval) for _ in range(sessions_per_od)]
            rtt_cvs.append(coefficient_of_variation([c.rtt for c in conds]))
            bw_cvs.append(coefficient_of_variation([c.bandwidth_bps for c in conds]))
        result.by_interval[interval] = IntervalDispersion(interval, rtt_cvs, bw_cvs)
    return result

"""Parallel deployment replay engine with a persistent result cache.

This is the single entry point behind every Fig 11–15 experiment: it
replays a :class:`~repro.workload.population.Deployment` under each
comparison scheme and returns the paired ``DeploymentRecords`` structure
defined in :mod:`repro.experiments.common`.

Three layers sit between a caller and a raw replay:

1. **In-process memo** — repeated calls in one interpreter (e.g. every
   figure of a benchmark session) share one replay, as before.
2. **Persistent disk cache** — results are pickled under
   ``$WIRA_CACHE_DIR`` (default ``~/.cache/wira-repro``), keyed by a
   content hash of the deployment configuration, the Wira configuration,
   the scheme set, a cache-format version, and a fingerprint of the
   ``repro`` package sources.  Separate pytest/benchmark invocations
   therefore pay for the headline replay once.  A corrupt, truncated or
   stale cache file is silently discarded and recomputed — the cache can
   never turn a valid run into a crash.  Set ``WIRA_DISK_CACHE=0`` to
   disable.
3. **Process-pool sharding** — the work units of a deployment are
   independent: each chain owns its cookie store, origin and per-session
   seeds.  With ``jobs > 1`` (or ``WIRA_JOBS=N``) the deployment is cut
   into **chunk-of-chains** tasks — ``(config, scheme, lo, hi)`` index
   ranges, regenerated inside each worker from the deployment seed via
   :meth:`~repro.workload.population.Deployment.generate_range` — fanned
   out across one *persistent* :class:`~concurrent.futures.ProcessPoolExecutor`
   (module-scoped, keyed by the job count, reused across every replay of
   a pytest session) and merged back in deterministic (scheme, chain)
   order, so parallel results are bit-identical to the serial path.  Any
   pool failure (unpicklable state, broken workers, sandboxes without
   fork) falls back to the in-process serial replay.

Serial replays themselves run through the batched multi-session kernel
(:mod:`repro.cdn.batchrun`) when ``WIRA_BATCH`` is on (the default):
wave *k* batches the *k*-th session of every chain into one
:class:`~repro.simnet.batch.BatchEventLoop`, preserving the cookie
hand-off within each chain and producing byte-identical records.
"""

from __future__ import annotations

import atexit
import hashlib
import logging
import multiprocessing
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from pathlib import Path
from typing import ContextManager, Dict, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.core.config import WiraConfig
from repro.core.initializer import Scheme
from repro.core.schemes import SchemeLike, SchemeSpec, as_spec
from repro.runtime import settings
from repro.workload.population import Deployment, DeploymentConfig

logger = logging.getLogger(__name__)

#: Bump when the serialized record layout (or replay semantics not
#: captured by the source fingerprint) changes incompatibly.
#: 2: SessionResult gained ``phase_breakdown``.
#: 3: records are keyed by ``SchemeSpec`` (scheme registry).
CACHE_FORMAT_VERSION = 3

_MEMORY_CACHE: Dict[tuple, "DeploymentRecords"] = {}

_SOURCE_FINGERPRINT: Optional[str] = None


# ---------------------------------------------------------------------------
# Worker pool plumbing.  Workers receive (config, scheme, index-range)
# tasks and regenerate their chains from the deployment seed — generation
# is pure sampling, far cheaper than shipping pickled chains over the
# pipe, and a per-worker cache reuses one range across the schemes that
# replay it.

_WORKER_CHAIN_CACHE: dict = {}


def _worker_chains(config: DeploymentConfig, lo: int, hi: int):
    """Chains for OD range [lo, hi), cached per (config, range) in-worker."""
    config_key = repr(sorted(vars(config).items()))
    cache_key_ = (config_key, lo, hi)
    chains = _WORKER_CHAIN_CACHE.get(cache_key_)
    if chains is None:
        if _WORKER_CHAIN_CACHE and next(iter(_WORKER_CHAIN_CACHE))[0] != config_key:
            # New deployment config: ranges of the old one are dead weight.
            _WORKER_CHAIN_CACHE.clear()
        chains = Deployment(config).generate_range(lo, hi)
        _WORKER_CHAIN_CACHE[cache_key_] = chains
    return chains


def _replay_chunk(task: Tuple[DeploymentConfig, WiraConfig, str, int, int]):
    """Worker entry: replay chains [lo, hi) under one scheme."""
    config, wira_config, scheme_value, lo, hi = task
    chains = _worker_chains(config, lo, hi)
    outcomes = _replay_chains_one_scheme(
        as_spec(scheme_value), chains, lo, config, wira_config
    )
    return scheme_value, lo, outcomes


_POOL: Optional[ProcessPoolExecutor] = None
_POOL_JOBS = 0


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    """The persistent replay pool, recycled only when ``jobs`` changes.

    Spawning workers is the dominant fixed cost of small parallel
    replays; one module-scoped executor amortises it across every
    deployment a pytest/benchmark session replays.
    """
    global _POOL, _POOL_JOBS
    if _POOL is not None and _POOL_JOBS != jobs:
        _POOL.shutdown(wait=True)
        _POOL = None
    if _POOL is None:
        mp_context = None
        if "fork" in multiprocessing.get_all_start_methods():
            mp_context = multiprocessing.get_context("fork")
        _POOL = ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context)
        _POOL_JOBS = jobs
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent pool (atexit, or after a pool failure)."""
    global _POOL, _POOL_JOBS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_JOBS = 0


atexit.register(shutdown_pool)


def _trace_shard(scheme_value: str, chain_index: int) -> ContextManager[None]:
    """Scope one (scheme, chain) work unit's trace output to a shard dir.

    Both the serial path and the pool workers run every unit through the
    same shard layout, so the on-disk trace set is byte-identical however
    the replay was parallelised (``merge_shard_traces`` recombines it).
    """
    bus = _obs.ACTIVE
    if bus is None or bus.trace_dir is None:
        return nullcontext()
    return bus.shard(f"{scheme_value}-c{chain_index}")


def _tracing_to_disk() -> bool:
    return _obs.ACTIVE is not None and _obs.ACTIVE.trace_dir is not None


# ---------------------------------------------------------------------------
# Knobs.


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``WIRA_JOBS``, else 1.

    Knob parsing lives in :mod:`repro.runtime.settings`; this helper
    only applies the explicit-argument precedence.
    """
    if jobs is None:
        return settings.current().jobs
    return max(1, jobs)


def disk_cache_enabled(disk_cache: Optional[bool] = None) -> bool:
    """Disk-cache switch: explicit argument, else ``WIRA_DISK_CACHE``."""
    if disk_cache is not None:
        return disk_cache
    return settings.current().disk_cache


def cache_dir() -> Path:
    """Directory holding pickled replay results (``WIRA_CACHE_DIR``)."""
    return settings.current().cache_dir


def source_fingerprint() -> str:
    """Content hash of every ``repro`` source file, memoised per process.

    Folding this into the cache key means any code change — not just a
    config change — invalidates persisted results, so a stale cache can
    never masquerade as a fresh replay.
    """
    global _SOURCE_FINGERPRINT
    if _SOURCE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _SOURCE_FINGERPRINT = digest.hexdigest()
    return _SOURCE_FINGERPRINT


def cache_key(
    config: DeploymentConfig,
    wira_config: WiraConfig,
    schemes: Sequence[SchemeLike],
) -> str:
    """Stable content hash identifying one replay's inputs."""
    payload = repr(
        (
            CACHE_FORMAT_VERSION,
            source_fingerprint(),
            sorted(as_spec(s).value for s in schemes),
            sorted(vars(config).items()),
            sorted(vars(wira_config).items()),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


def _cache_path(key: str) -> Path:
    return cache_dir() / f"deployment-{key}.pkl"


def load_cached(key: str) -> Optional["DeploymentRecords"]:
    """Load a persisted replay; any defect means ``None``, never a crash."""
    path = _cache_path(key)
    try:
        with path.open("rb") as fh:
            records = pickle.load(fh)
    except FileNotFoundError:
        return None
    except Exception as exc:
        logger.warning("discarding unreadable cache file %s (%s)", path, exc)
        try:
            path.unlink()
        except OSError:
            pass
        return None
    if not _looks_like_records(records):
        logger.warning("discarding malformed cache file %s", path)
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return records


def store_cached(key: str, records: "DeploymentRecords") -> None:
    """Persist a replay atomically; failures are logged, not raised."""
    path = _cache_path(key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(records, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except Exception as exc:
        logger.warning("could not persist replay cache to %s (%s)", path, exc)


def _looks_like_records(records) -> bool:
    from repro.experiments.common import SessionOutcome

    if not isinstance(records, dict) or not records:
        return False
    for scheme, outcomes in records.items():
        if not isinstance(scheme, (Scheme, SchemeSpec)) or not isinstance(outcomes, list):
            return False
        if outcomes and not isinstance(outcomes[0], SessionOutcome):
            return False
    return True


def clear_caches(disk: bool = False) -> None:
    """Drop the in-process memo (and optionally the persisted files)."""
    _MEMORY_CACHE.clear()
    if disk:
        try:
            for path in cache_dir().glob("deployment-*.pkl"):
                path.unlink()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Replay engine.


def run_deployment(
    config: Optional[DeploymentConfig] = None,
    schemes: Optional[Sequence[SchemeLike]] = None,
    wira_config: Optional[WiraConfig] = None,
    use_cache: bool = True,
    jobs: Optional[int] = None,
    disk_cache: Optional[bool] = None,
) -> "DeploymentRecords":
    """Replay the deployment under each scheme; returns paired records.

    Parameters
    ----------
    use_cache:
        ``False`` bypasses both the in-process memo and the disk cache
        (and does not populate them).
    jobs:
        Worker processes.  ``None`` consults ``WIRA_JOBS``; 1 replays
        in-process (the reference serial path).
    disk_cache:
        Overrides ``WIRA_DISK_CACHE``; ``None`` means "per environment".
    """
    from repro.experiments.common import EVAL_SCHEMES

    config = config or DeploymentConfig()
    wira_config = wira_config or WiraConfig()
    if schemes is None:
        schemes = EVAL_SCHEMES
    # Normalize once: every layer below (tasks, caches, record keys)
    # works on canonical SchemeSpec values; value-equality keeps the
    # returned records addressable by enum members and value strings.
    schemes = tuple(as_spec(s) for s in schemes)
    memo_key = (
        tuple(sorted(s.value for s in schemes)),
        tuple(sorted(vars(config).items())),
        tuple(sorted(vars(wira_config).items())),
    )
    if _tracing_to_disk():
        # A cache hit would skip the replay — and with it the trace
        # files the caller asked for.  Replay for real, without
        # poisoning the caches with this run's breakdown-carrying
        # records (callers not tracing should keep hitting the
        # breakdown-free cached records).
        use_cache = False
    if use_cache and memo_key in _MEMORY_CACHE:
        return _MEMORY_CACHE[memo_key]

    persist = use_cache and disk_cache_enabled(disk_cache)
    key = cache_key(config, wira_config, schemes) if persist else None
    if key is not None:
        records = load_cached(key)
        if records is not None:
            _MEMORY_CACHE[memo_key] = records
            return records

    records = _replay(config, schemes, wira_config, resolve_jobs(jobs))
    if _tracing_to_disk():
        assert _obs.ACTIVE is not None and _obs.ACTIVE.trace_dir is not None
        _obs.merge_shard_traces(_obs.ACTIVE.trace_dir)

    if use_cache:
        _MEMORY_CACHE[memo_key] = records
    if key is not None:
        store_cached(key, records)
    return records


def _replay(
    config: DeploymentConfig,
    schemes: Sequence[Scheme],
    wira_config: WiraConfig,
    jobs: int,
) -> "DeploymentRecords":
    if jobs > 1:
        try:
            return _replay_parallel(config, schemes, wira_config, jobs)
        except Exception as exc:
            logger.warning(
                "parallel replay with %d workers failed (%s); "
                "falling back to serial",
                jobs,
                exc,
            )
    return _replay_serial(config, schemes, wira_config)


def _replay_serial(
    config: DeploymentConfig,
    schemes: Sequence[Scheme],
    wira_config: WiraConfig,
) -> "DeploymentRecords":
    chains = Deployment(config).generate()
    records: "DeploymentRecords" = {scheme: [] for scheme in schemes}
    for scheme in schemes:
        records[scheme].extend(
            _replay_chains_one_scheme(scheme, chains, 0, config, wira_config)
        )
    return records


def _replay_chains_one_scheme(
    scheme: Scheme,
    chains: list,
    base_index: int,
    config: DeploymentConfig,
    wira_config: WiraConfig,
) -> list:
    """Replay a block of chains under one scheme, in chain order.

    Dispatches to the batched kernel when enabled and no trace bus is
    active; otherwise runs the legacy chain-by-chain reference path
    (which is also the path that scopes per-chain trace shards).  Both
    produce byte-identical outcome sequences.
    """
    if settings.current().batch and _obs.ACTIVE is None and len(chains) > 1:
        return _replay_chains_batched(scheme, chains, base_index, config, wira_config)
    from repro.experiments.common import _run_chain

    outcomes: list = []
    for offset, chain in enumerate(chains):
        chain_index = base_index + offset
        with _trace_shard(scheme.value, chain_index):
            outcomes.extend(_run_chain(scheme, chain, chain_index, config, wira_config))
    return outcomes


def _replay_chains_batched(
    scheme: Scheme,
    chains: list,
    base_index: int,
    config: DeploymentConfig,
    wira_config: WiraConfig,
) -> list:
    """Wave-batched replay: byte-identical to chain-by-chain solo runs.

    The wave mechanics live in
    :func:`repro.experiments.common.replay_chains_wave_batched` (shared
    with the fleet engine); this wrapper flattens the per-chain lists
    back into the chain-major order the serial path produces.
    """
    from repro.experiments.common import replay_chains_wave_batched

    per_chain = replay_chains_wave_batched(
        scheme, chains, base_index, config, wira_config
    )
    outcomes: list = []
    for chain_outcomes in per_chain:
        outcomes.extend(chain_outcomes)
    return outcomes


#: Ceiling on chains per parallel chunk: small enough to load-balance a
#: headline replay across a handful of workers, large enough that the
#: per-task (pickle + dispatch + regenerate) overhead stays negligible.
MAX_CHUNK_CHAINS = 30


def _chunk_bounds(n_od_pairs: int, jobs: int) -> List[Tuple[int, int]]:
    """Cut [0, n_od_pairs) into balanced chunks for ``jobs`` workers."""
    target = max(1, min(MAX_CHUNK_CHAINS, (n_od_pairs + 2 * jobs - 1) // (2 * jobs)))
    return [(lo, min(lo + target, n_od_pairs)) for lo in range(0, n_od_pairs, target)]


def _replay_parallel(
    config: DeploymentConfig,
    schemes: Sequence[Scheme],
    wira_config: WiraConfig,
    jobs: int,
) -> "DeploymentRecords":
    bounds = _chunk_bounds(config.n_od_pairs, jobs)
    tasks = [
        (config, wira_config, scheme.value, lo, hi)
        for scheme in schemes
        for lo, hi in bounds
    ]
    by_chunk: Dict[Tuple[str, int], list] = {}
    if _tracing_to_disk():
        # Trace runs need workers forked *after* the bus was installed;
        # the persistent pool predates it, so use a dedicated pool.
        mp_context = None
        if "fork" in multiprocessing.get_all_start_methods():
            mp_context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context) as pool:
            for scheme_value, lo, outcomes in pool.map(_replay_chunk, tasks):
                by_chunk[(scheme_value, lo)] = outcomes
    else:
        try:
            pool = _get_pool(jobs)
            for scheme_value, lo, outcomes in pool.map(_replay_chunk, tasks):
                by_chunk[(scheme_value, lo)] = outcomes
        except Exception:
            # A broken pool poisons every later replay: recycle it before
            # the caller falls back to serial.
            shutdown_pool()
            raise

    # Merge in the serial path's (scheme, chain-range) order so the
    # records — and any iteration over them — are bit-identical to a
    # serial run.
    records: "DeploymentRecords" = {scheme: [] for scheme in schemes}
    for scheme in schemes:
        for lo, _hi in bounds:
            records[scheme].extend(by_chunk[(scheme.value, lo)])
    return records


# Imported late to avoid a circular import at module load; re-exported for
# type annotations in callers.
from repro.experiments.common import DeploymentRecords  # noqa: E402

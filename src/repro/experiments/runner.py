"""Parallel deployment replay engine with a persistent result cache.

This is the single entry point behind every Fig 11–15 experiment: it
replays a :class:`~repro.workload.population.Deployment` under each
comparison scheme and returns the paired ``DeploymentRecords`` structure
defined in :mod:`repro.experiments.common`.

Three layers sit between a caller and a raw replay:

1. **In-process memo** — repeated calls in one interpreter (e.g. every
   figure of a benchmark session) share one replay, as before.
2. **Persistent disk cache** — results are pickled under
   ``$WIRA_CACHE_DIR`` (default ``~/.cache/wira-repro``), keyed by a
   content hash of the deployment configuration, the Wira configuration,
   the scheme set, a cache-format version, and a fingerprint of the
   ``repro`` package sources.  Separate pytest/benchmark invocations
   therefore pay for the headline replay once.  A corrupt, truncated or
   stale cache file is silently discarded and recomputed — the cache can
   never turn a valid run into a crash.  Set ``WIRA_DISK_CACHE=0`` to
   disable.
3. **Process-pool sharding** — the (scheme × chain) work units of a
   deployment are independent: each chain owns its cookie store, origin
   and per-session seeds.  With ``jobs > 1`` (or ``WIRA_JOBS=N``) the
   units are fanned out across a :class:`~concurrent.futures.ProcessPoolExecutor`
   and merged back in deterministic (scheme, chain) order, so parallel
   results are bit-identical to the serial path.  Any pool failure
   (unpicklable state, broken workers, sandboxes without fork) falls
   back to the in-process serial replay.
"""

from __future__ import annotations

import hashlib
import logging
import multiprocessing
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from pathlib import Path
from typing import ContextManager, Dict, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.core.config import WiraConfig
from repro.core.initializer import Scheme
from repro.runtime import settings
from repro.workload.population import Deployment, DeploymentConfig

logger = logging.getLogger(__name__)

#: Bump when the serialized record layout (or replay semantics not
#: captured by the source fingerprint) changes incompatibly.
#: 2: SessionResult gained ``phase_breakdown``.
CACHE_FORMAT_VERSION = 2

_MEMORY_CACHE: Dict[tuple, "DeploymentRecords"] = {}

_SOURCE_FINGERPRINT: Optional[str] = None


# ---------------------------------------------------------------------------
# Worker pool plumbing.  Chains are regenerated inside each worker from the
# (picklable) DeploymentConfig — generation is pure sampling, far cheaper
# than shipping the chains over the pipe.

_WORKER_STATE: dict = {}


def _worker_init(config: DeploymentConfig, wira_config: WiraConfig) -> None:
    _WORKER_STATE["chains"] = Deployment(config).generate()
    _WORKER_STATE["config"] = config
    _WORKER_STATE["wira_config"] = wira_config


def _replay_unit(unit: Tuple[str, int]):
    from repro.experiments.common import _run_chain

    scheme_value, chain_index = unit
    with _trace_shard(scheme_value, chain_index):
        outcomes = _run_chain(
            Scheme(scheme_value),
            _WORKER_STATE["chains"][chain_index],
            chain_index,
            _WORKER_STATE["config"],
            _WORKER_STATE["wira_config"],
        )
    return scheme_value, chain_index, outcomes


def _trace_shard(scheme_value: str, chain_index: int) -> ContextManager[None]:
    """Scope one (scheme, chain) work unit's trace output to a shard dir.

    Both the serial path and the pool workers run every unit through the
    same shard layout, so the on-disk trace set is byte-identical however
    the replay was parallelised (``merge_shard_traces`` recombines it).
    """
    bus = _obs.ACTIVE
    if bus is None or bus.trace_dir is None:
        return nullcontext()
    return bus.shard(f"{scheme_value}-c{chain_index}")


def _tracing_to_disk() -> bool:
    return _obs.ACTIVE is not None and _obs.ACTIVE.trace_dir is not None


# ---------------------------------------------------------------------------
# Knobs.


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``WIRA_JOBS``, else 1.

    Knob parsing lives in :mod:`repro.runtime.settings`; this helper
    only applies the explicit-argument precedence.
    """
    if jobs is None:
        return settings.current().jobs
    return max(1, jobs)


def disk_cache_enabled(disk_cache: Optional[bool] = None) -> bool:
    """Disk-cache switch: explicit argument, else ``WIRA_DISK_CACHE``."""
    if disk_cache is not None:
        return disk_cache
    return settings.current().disk_cache


def cache_dir() -> Path:
    """Directory holding pickled replay results (``WIRA_CACHE_DIR``)."""
    return settings.current().cache_dir


def source_fingerprint() -> str:
    """Content hash of every ``repro`` source file, memoised per process.

    Folding this into the cache key means any code change — not just a
    config change — invalidates persisted results, so a stale cache can
    never masquerade as a fresh replay.
    """
    global _SOURCE_FINGERPRINT
    if _SOURCE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _SOURCE_FINGERPRINT = digest.hexdigest()
    return _SOURCE_FINGERPRINT


def cache_key(
    config: DeploymentConfig,
    wira_config: WiraConfig,
    schemes: Sequence[Scheme],
) -> str:
    """Stable content hash identifying one replay's inputs."""
    payload = repr(
        (
            CACHE_FORMAT_VERSION,
            source_fingerprint(),
            sorted(s.value for s in schemes),
            sorted(vars(config).items()),
            sorted(vars(wira_config).items()),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


def _cache_path(key: str) -> Path:
    return cache_dir() / f"deployment-{key}.pkl"


def load_cached(key: str) -> Optional["DeploymentRecords"]:
    """Load a persisted replay; any defect means ``None``, never a crash."""
    path = _cache_path(key)
    try:
        with path.open("rb") as fh:
            records = pickle.load(fh)
    except FileNotFoundError:
        return None
    except Exception as exc:
        logger.warning("discarding unreadable cache file %s (%s)", path, exc)
        try:
            path.unlink()
        except OSError:
            pass
        return None
    if not _looks_like_records(records):
        logger.warning("discarding malformed cache file %s", path)
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return records


def store_cached(key: str, records: "DeploymentRecords") -> None:
    """Persist a replay atomically; failures are logged, not raised."""
    path = _cache_path(key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(records, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except Exception as exc:
        logger.warning("could not persist replay cache to %s (%s)", path, exc)


def _looks_like_records(records) -> bool:
    from repro.experiments.common import SessionOutcome

    if not isinstance(records, dict) or not records:
        return False
    for scheme, outcomes in records.items():
        if not isinstance(scheme, Scheme) or not isinstance(outcomes, list):
            return False
        if outcomes and not isinstance(outcomes[0], SessionOutcome):
            return False
    return True


def clear_caches(disk: bool = False) -> None:
    """Drop the in-process memo (and optionally the persisted files)."""
    _MEMORY_CACHE.clear()
    if disk:
        try:
            for path in cache_dir().glob("deployment-*.pkl"):
                path.unlink()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Replay engine.


def run_deployment(
    config: Optional[DeploymentConfig] = None,
    schemes: Optional[Sequence[Scheme]] = None,
    wira_config: Optional[WiraConfig] = None,
    use_cache: bool = True,
    jobs: Optional[int] = None,
    disk_cache: Optional[bool] = None,
) -> "DeploymentRecords":
    """Replay the deployment under each scheme; returns paired records.

    Parameters
    ----------
    use_cache:
        ``False`` bypasses both the in-process memo and the disk cache
        (and does not populate them).
    jobs:
        Worker processes.  ``None`` consults ``WIRA_JOBS``; 1 replays
        in-process (the reference serial path).
    disk_cache:
        Overrides ``WIRA_DISK_CACHE``; ``None`` means "per environment".
    """
    from repro.experiments.common import EVAL_SCHEMES

    config = config or DeploymentConfig()
    wira_config = wira_config or WiraConfig()
    if schemes is None:
        schemes = EVAL_SCHEMES
    memo_key = (
        tuple(sorted(s.value for s in schemes)),
        tuple(sorted(vars(config).items())),
        tuple(sorted(vars(wira_config).items())),
    )
    if _tracing_to_disk():
        # A cache hit would skip the replay — and with it the trace
        # files the caller asked for.  Replay for real, without
        # poisoning the caches with this run's breakdown-carrying
        # records (callers not tracing should keep hitting the
        # breakdown-free cached records).
        use_cache = False
    if use_cache and memo_key in _MEMORY_CACHE:
        return _MEMORY_CACHE[memo_key]

    persist = use_cache and disk_cache_enabled(disk_cache)
    key = cache_key(config, wira_config, schemes) if persist else None
    if key is not None:
        records = load_cached(key)
        if records is not None:
            _MEMORY_CACHE[memo_key] = records
            return records

    records = _replay(config, schemes, wira_config, resolve_jobs(jobs))
    if _tracing_to_disk():
        assert _obs.ACTIVE is not None and _obs.ACTIVE.trace_dir is not None
        _obs.merge_shard_traces(_obs.ACTIVE.trace_dir)

    if use_cache:
        _MEMORY_CACHE[memo_key] = records
    if key is not None:
        store_cached(key, records)
    return records


def _replay(
    config: DeploymentConfig,
    schemes: Sequence[Scheme],
    wira_config: WiraConfig,
    jobs: int,
) -> "DeploymentRecords":
    if jobs > 1:
        try:
            return _replay_parallel(config, schemes, wira_config, jobs)
        except Exception as exc:
            logger.warning(
                "parallel replay with %d workers failed (%s); "
                "falling back to serial",
                jobs,
                exc,
            )
    return _replay_serial(config, schemes, wira_config)


def _replay_serial(
    config: DeploymentConfig,
    schemes: Sequence[Scheme],
    wira_config: WiraConfig,
) -> "DeploymentRecords":
    from repro.experiments.common import _run_chain

    chains = Deployment(config).generate()
    records: "DeploymentRecords" = {scheme: [] for scheme in schemes}
    for scheme in schemes:
        for chain_index, chain in enumerate(chains):
            with _trace_shard(scheme.value, chain_index):
                records[scheme].extend(
                    _run_chain(scheme, chain, chain_index, config, wira_config)
                )
    return records


def _replay_parallel(
    config: DeploymentConfig,
    schemes: Sequence[Scheme],
    wira_config: WiraConfig,
    jobs: int,
) -> "DeploymentRecords":
    units = [
        (scheme.value, chain_index)
        for scheme in schemes
        for chain_index in range(config.n_od_pairs)
    ]
    mp_context = None
    if "fork" in multiprocessing.get_all_start_methods():
        mp_context = multiprocessing.get_context("fork")
    chunksize = max(1, len(units) // (jobs * 8))
    by_unit: Dict[Tuple[str, int], list] = {}
    with ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=mp_context,
        initializer=_worker_init,
        initargs=(config, wira_config),
    ) as pool:
        for scheme_value, chain_index, outcomes in pool.map(
            _replay_unit, units, chunksize=chunksize
        ):
            by_unit[(scheme_value, chain_index)] = outcomes

    # Merge in the serial path's (scheme, chain) order so the records —
    # and any iteration over them — are bit-identical to a serial run.
    records: "DeploymentRecords" = {scheme: [] for scheme in schemes}
    for scheme in schemes:
        for chain_index in range(config.n_od_pairs):
            records[scheme].extend(by_unit[(scheme.value, chain_index)])
    return records


# Imported late to avoid a circular import at module load; re-exported for
# type annotations in callers.
from repro.experiments.common import DeploymentRecords  # noqa: E402

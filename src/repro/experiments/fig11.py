"""Fig 11 — real-network FFCT benefits of all live streams.

Paper headline: against the experiential baseline (avg 158.9 ms,
p70 130.0 ms, p90 409.6 ms), Wira lowers the average FFCT by 10.6 % (to
142.0 ms), the 70th percentile by 18.7 % and the 90th by 16.7 %, with
Wira(FF) and Wira(Hx) capturing 6.0 % and 7.4 % average gains
respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.initializer import Scheme
from repro.experiments.common import (
    DeploymentRecords,
    EVAL_SCHEMES,
    HEADLINE_CONFIG,
)
from repro.experiments.runner import run_deployment
from repro.metrics.collector import MetricSeries
from repro.metrics.stats import mean, percentile

PERCENTILES = (50, 70, 90, 95)


@dataclass
class SchemeFfct:
    scheme: Scheme
    samples: List[float]

    @property
    def avg(self) -> float:
        return mean(self.samples)

    def p(self, q: float) -> float:
        return percentile(self.samples, q)


@dataclass
class Fig11Result:
    by_scheme: Dict[Scheme, SchemeFfct]

    def improvement(self, scheme: Scheme, q: Optional[float] = None) -> float:
        """Optimisation ratio vs. the baseline (positive = faster)."""
        base = self.by_scheme[Scheme.BASELINE]
        ours = self.by_scheme[scheme]
        base_v = base.avg if q is None else base.p(q)
        ours_v = ours.avg if q is None else ours.p(q)
        return (base_v - ours_v) / base_v


def summarize(records: DeploymentRecords) -> Fig11Result:
    by_scheme = {}
    for scheme, outcomes in records.items():
        samples = [o.result.ffct for o in outcomes if o.result.ffct is not None]
        by_scheme[scheme] = SchemeFfct(scheme, samples)
    return Fig11Result(by_scheme)


def run(config=None) -> Fig11Result:
    records = run_deployment(config or HEADLINE_CONFIG, EVAL_SCHEMES)
    return summarize(records)

"""Fig 14 — first-frame loss rate (FFLR).

Paper: Wira reduces the average FFLR from 8.8 % to 6.4 % (a 27.3 %
optimisation) and the 90th percentile from 25.3 % to 16.6 % (34.4 %);
0-RTT streams improve 27.6 % / 36.5 % (avg / p90) and 1-RTT streams
21.4 % / 6.0 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.initializer import Scheme
from repro.experiments.common import (
    DeploymentRecords,
    EVAL_SCHEMES,
    HEADLINE_CONFIG,
)
from repro.experiments.runner import run_deployment
from repro.metrics.stats import mean, percentile
from repro.quic.connection import HandshakeMode


@dataclass
class FflrSeries:
    samples: List[float]

    @property
    def avg(self) -> float:
        return mean(self.samples)

    def p(self, q: float) -> float:
        return percentile(self.samples, q)


@dataclass
class Fig14Result:
    overall: Dict[Scheme, FflrSeries]
    by_mode: Dict[tuple, FflrSeries]

    def improvement(self, scheme: Scheme, q: Optional[float] = None,
                    mode: Optional[HandshakeMode] = None) -> float:
        if mode is None:
            base, ours = self.overall[Scheme.BASELINE], self.overall[scheme]
        else:
            base = self.by_mode[(mode, Scheme.BASELINE)]
            ours = self.by_mode[(mode, scheme)]
        base_v = base.avg if q is None else base.p(q)
        ours_v = ours.avg if q is None else ours.p(q)
        if base_v == 0:
            return 0.0
        return (base_v - ours_v) / base_v


def summarize(records: DeploymentRecords) -> Fig14Result:
    overall: Dict[Scheme, FflrSeries] = {}
    by_mode: Dict[tuple, FflrSeries] = {}
    for scheme, outcomes in records.items():
        all_samples = [o.result.fflr for o in outcomes if o.result.fflr is not None]
        overall[scheme] = FflrSeries(all_samples)
        for mode in HandshakeMode:
            samples = [
                o.result.fflr
                for o in outcomes
                if o.result.fflr is not None and o.spec.handshake_mode == mode
            ]
            by_mode[(mode, scheme)] = FflrSeries(samples)
    return Fig14Result(overall, by_mode)


def run(config=None) -> Fig14Result:
    records = run_deployment(config or HEADLINE_CONFIG, EVAL_SCHEMES)
    return summarize(records)

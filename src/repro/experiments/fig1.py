"""Fig 1 — diverse first-frame sizes.

(a) inter-stream FF_Size CDF over the stream population (paper: mean
43.1 KB, 30 % below 30 KB, 20 % above 60 KB);
(b) intra-stream FF_Size when re-requesting the same stream every 5 s
(paper's example ranges 45–130 KB).

The reproduction measures FF_Size the same way the system does: by
running Frame Perception over the FLV bytes a joining viewer would be
sent, not by reading the generator's configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.core.frame_perception import FrameParser
from repro.media import flv
from repro.media.source import LiveSource, StreamProfile
from repro.metrics.stats import Cdf, mean
from repro.workload.streams import sample_stream_profile


@dataclass
class Fig1Result:
    inter_stream_sizes: List[int]
    intra_stream_sizes: List[int]

    @property
    def cdf(self) -> Cdf:
        return Cdf([float(s) for s in self.inter_stream_sizes])

    @property
    def mean_kb(self) -> float:
        return mean(self.inter_stream_sizes) / 1000.0

    @property
    def frac_below_30kb(self) -> float:
        return self.cdf.at(30_000)

    @property
    def frac_above_60kb(self) -> float:
        return self.cdf.fraction_above(60_000)

    @property
    def intra_min_kb(self) -> float:
        return min(self.intra_stream_sizes) / 1000.0

    @property
    def intra_max_kb(self) -> float:
        return max(self.intra_stream_sizes) / 1000.0


def parsed_ff_size(source: LiveSource, join_time: float) -> int:
    """FF_Size as Frame Perception reports it for a join at t."""
    gop = source.gop_at(join_time)
    parser = FrameParser()
    ff = parser.feed(flv.mux(gop.frames))
    assert ff is not None
    return ff


def run(n_streams: int = 2_000, intra_samples: int = 40, seed: int = 11) -> Fig1Result:
    rng = random.Random(seed)
    inter: List[int] = []
    for i in range(n_streams):
        profile = sample_stream_profile(rng, stream_seed=i)
        source = LiveSource(profile)
        inter.append(parsed_ff_size(source, join_time=rng.uniform(0, 120)))

    # Fig 1(b): one stream sampled every 5 seconds.
    profile = StreamProfile(
        first_frame_target_bytes=80_000,
        complexity_rho=0.85,
        complexity_sigma=0.22,
        seed=77,
    )
    source = LiveSource(profile)
    intra = [parsed_ff_size(source, join_time=5.0 * k) for k in range(intra_samples)]
    return Fig1Result(inter, intra)

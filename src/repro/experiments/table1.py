"""Table I — parameter configurations of init_cwnd and init_pacing.

Executable documentation: evaluates every scheme on a fixed signal set
and renders the configuration table, verifying the implementation
matches the paper's formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import WiraConfig
from repro.core.initializer import Scheme, payload_to_wire_bytes
from repro.core.schemes import InitContext, make_policy
from repro.core.transport_cookie import HxQos


@dataclass
class Table1Row:
    scheme: Scheme
    cwnd_formula: str
    pacing_formula: str
    cwnd_bytes: int
    pacing_bps: float


FORMULAS = {
    Scheme.BASELINE: ("init_cwnd_exp", "init_cwnd/init_RTT_exp"),
    Scheme.WIRA_FF: ("FF_Size", "init_cwnd/init_RTT_exp"),
    Scheme.WIRA_HX: ("BDP", "MaxBW"),
    Scheme.WIRA: ("min{FF_Size, BDP}", "MaxBW"),
}


def run(
    ff_size: int = 66_000,
    max_bw_bps: float = 8e6,
    min_rtt: float = 0.050,
) -> List[Table1Row]:
    config = WiraConfig()
    hx = HxQos(min_rtt=min_rtt, max_bw_bps=max_bw_bps, timestamp=0.0)
    rows = []
    for scheme, (cwnd_formula, pacing_formula) in FORMULAS.items():
        params = make_policy(scheme).initial_params(
            InitContext(config=config, ff_size=ff_size, hx_qos=hx)
        )
        rows.append(
            Table1Row(scheme, cwnd_formula, pacing_formula, params.cwnd_bytes, params.pacing_bps)
        )
    return rows


def verify(rows: List[Table1Row]) -> None:
    """Assert the computed values match the Table I formulas."""
    config = WiraConfig()
    by_scheme = {row.scheme: row for row in rows}
    exp_wire = payload_to_wire_bytes(config.init_cwnd_exp)
    ff_wire = payload_to_wire_bytes(66_000)
    bdp = int(8e6 * 0.050 / 8)
    assert by_scheme[Scheme.BASELINE].cwnd_bytes == exp_wire
    assert by_scheme[Scheme.WIRA_FF].cwnd_bytes == ff_wire
    assert by_scheme[Scheme.WIRA_HX].cwnd_bytes == bdp
    assert by_scheme[Scheme.WIRA].cwnd_bytes == min(ff_wire, bdp)
    # Exact equality is the point of this check: Table I passes MaxBW
    # through to init_pacing unchanged, so any arithmetic drift is a bug.
    assert by_scheme[Scheme.WIRA_HX].pacing_bps == 8e6  # wira-lint: disable=WL003
    assert by_scheme[Scheme.WIRA].pacing_bps == 8e6  # wira-lint: disable=WL003

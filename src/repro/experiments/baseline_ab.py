"""§VI preamble — choosing the baseline via A/B test.

The paper justifies its experiential baseline over Google's
``init_cwnd = 10`` recommendation: the static window yields an average
(p90) FFCT of 201.0 ms (476.5 ms), versus 158.9 ms (409.6 ms) for the
experiential configuration — so the *stronger* policy is used as the
comparison baseline throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.initializer import Scheme
from repro.experiments.common import HEADLINE_CONFIG
from repro.experiments.runner import run_deployment
from repro.metrics.stats import mean, percentile


@dataclass
class AbResult:
    ffct: Dict[Scheme, List[float]]

    def avg(self, scheme: Scheme) -> float:
        return mean(self.ffct[scheme])

    def p90(self, scheme: Scheme) -> float:
        return percentile(self.ffct[scheme], 90)


def run(config=None) -> AbResult:
    records = run_deployment(
        config or HEADLINE_CONFIG, schemes=(Scheme.STATIC_10, Scheme.BASELINE)
    )
    ffct = {
        scheme: [o.result.ffct for o in outcomes if o.result.ffct is not None]
        for scheme, outcomes in records.items()
    }
    return AbResult(ffct)

"""Experiment runners — one module per table/figure of the paper.

Each runner regenerates its artefact's rows/series and returns plain
data structures; the benchmarks under ``benchmarks/`` invoke these and
print paper-style tables.  See DESIGN.md's experiment index for the
mapping and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from repro.experiments.common import (
    DeploymentRecords,
    SessionOutcome,
    run_testbed_session,
)
from repro.experiments.runner import run_deployment

__all__ = [
    "DeploymentRecords",
    "SessionOutcome",
    "run_deployment",
    "run_testbed_session",
]

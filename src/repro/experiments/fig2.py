"""Fig 2 — FFCT varies with init_cwnd and init_pacing (testbed).

Conditions follow §II footnote 2: 8 Mbps bandwidth, 3 % loss, 50 ms RTT,
25 KB buffer; the requested stream has a 66 KB first frame.

(a) sweeps ``init_cwnd`` in packets over {4, 10, 45, 80, 100} with
pacing tied to the window (``cwnd / RTT``); the paper finds 45 — the
window matching FF_Size — best, small values costing extra RTTs and
large ones suffering losses.

(b) pins ``init_cwnd`` to the first-frame size and sweeps
``init_pacing`` over {0.8, 4, 8, 16, 40} Mbps; 8 Mbps — matching the
bottleneck — wins, with ≥16 Mbps causing heavy first-frame loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.initializer import payload_to_wire_bytes
from repro.experiments.common import manual_params, run_testbed_session
from repro.metrics.stats import mean
from repro.simnet.path import NetworkConditions

TESTBED = NetworkConditions(
    bandwidth_bps=8_000_000.0, rtt=0.050, loss_rate=0.03, buffer_bytes=25_000
)
FF_BYTES = 66_000
CWND_SWEEP_PACKETS = (4, 10, 45, 80, 100)
PACING_SWEEP_MBPS = (0.8, 4.0, 8.0, 16.0, 40.0)
PACKET_WIRE = 1280


@dataclass
class SweepPoint:
    parameter: float
    ffct: float
    loss_rate: float


@dataclass
class Fig2Result:
    cwnd_sweep: List[SweepPoint]  # (a)
    pacing_sweep: List[SweepPoint]  # (b)

    def best_cwnd(self) -> float:
        return min(self.cwnd_sweep, key=lambda p: p.ffct).parameter

    def best_pacing(self) -> float:
        return min(self.pacing_sweep, key=lambda p: p.ffct).parameter


def _run_point(cwnd_bytes: int, pacing_bps: float, repeats: int, seed_base: int) -> Tuple[float, float]:
    ffcts, losses = [], []
    for r in range(repeats):
        result = run_testbed_session(
            manual_params(cwnd_bytes, pacing_bps),
            conditions=TESTBED,
            ff_target=FF_BYTES,
            seed=seed_base + r,
        )
        if result.ffct is not None:
            ffcts.append(result.ffct)
        if result.fflr is not None:
            losses.append(result.fflr)
    return mean(ffcts), mean(losses) if losses else 0.0


def run(repeats: int = 25, seed: int = 0) -> Fig2Result:
    cwnd_sweep = []
    for packets in CWND_SWEEP_PACKETS:
        cwnd = packets * PACKET_WIRE
        pacing = cwnd * 8.0 / TESTBED.rtt  # pacing follows the window
        ffct, loss = _run_point(cwnd, pacing, repeats, seed + packets * 1000)
        cwnd_sweep.append(SweepPoint(packets, ffct, loss))

    pacing_sweep = []
    ff_wire = payload_to_wire_bytes(FF_BYTES)
    for mbps in PACING_SWEEP_MBPS:
        ffct, loss = _run_point(ff_wire, mbps * 1e6, repeats, seed + int(mbps * 10) * 7919)
        pacing_sweep.append(SweepPoint(mbps, ffct, loss))
    return Fig2Result(cwnd_sweep, pacing_sweep)

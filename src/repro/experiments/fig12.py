"""Fig 12 — FFCT benefits split by 0-RTT vs 1-RTT establishment.

Paper: 0-RTT streams (~90 % of traffic) improve 9.5 % on average under
Wira (169.0 → 152.9 ms, p90 −16.6 %); 1-RTT streams improve *more* —
21.3 % on average (84.4 → 66.5 ms, p90 −32.5 %) — because the measured
handshake RTT lets the server compute accurate initial parameters before
any data flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.initializer import Scheme
from repro.experiments.common import (
    DeploymentRecords,
    EVAL_SCHEMES,
    HEADLINE_CONFIG,
)
from repro.experiments.runner import run_deployment
from repro.metrics.stats import mean, percentile
from repro.quic.connection import HandshakeMode


@dataclass
class ModeFfct:
    mode: HandshakeMode
    scheme: Scheme
    samples: List[float]

    @property
    def avg(self) -> float:
        return mean(self.samples)

    def p(self, q: float) -> float:
        return percentile(self.samples, q)


@dataclass
class Fig12Result:
    by_mode_scheme: Dict[tuple, ModeFfct]

    def get(self, mode: HandshakeMode, scheme: Scheme) -> ModeFfct:
        return self.by_mode_scheme[(mode, scheme)]

    def improvement(self, mode: HandshakeMode, scheme: Scheme, q=None) -> float:
        base = self.get(mode, Scheme.BASELINE)
        ours = self.get(mode, scheme)
        base_v = base.avg if q is None else base.p(q)
        ours_v = ours.avg if q is None else ours.p(q)
        return (base_v - ours_v) / base_v

    def zero_rtt_fraction(self) -> float:
        zero = len(self.get(HandshakeMode.ZERO_RTT, Scheme.BASELINE).samples)
        one = len(self.get(HandshakeMode.ONE_RTT, Scheme.BASELINE).samples)
        return zero / (zero + one)


def summarize(records: DeploymentRecords) -> Fig12Result:
    by_mode_scheme = {}
    for scheme, outcomes in records.items():
        for mode in HandshakeMode:
            samples = [
                o.result.ffct
                for o in outcomes
                if o.result.ffct is not None and o.spec.handshake_mode == mode
            ]
            by_mode_scheme[(mode, scheme)] = ModeFfct(mode, scheme, samples)
    return Fig12Result(by_mode_scheme)


def run(config=None) -> Fig12Result:
    records = run_deployment(config or HEADLINE_CONFIG, EVAL_SCHEMES)
    return summarize(records)

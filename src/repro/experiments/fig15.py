"""Fig 15 — influence on follow-up frame transmissions.

Paper: Wira's FFCT gain (158.5 → 142.0 ms) carries through to the 2nd–4th
video frames with stable optimisation ratios (10.9–13.0 %), and the
follow-up frame loss rate *improves* (9.0–9.2 % baseline vs 6.7–7.1 %
Wira) — i.e. first-frame acceleration does not congest the tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.initializer import Scheme
from repro.experiments.common import (
    DeploymentRecords,
    EVAL_SCHEMES,
    HEADLINE_CONFIG,
)
from repro.experiments.runner import run_deployment
from repro.metrics.stats import mean

FRAMES = (1, 2, 3, 4)


@dataclass
class Fig15Result:
    completion: Dict[tuple, List[float]]  # (scheme, k) -> times
    loss: Dict[tuple, List[float]]  # (scheme, k) -> loss rates

    def mean_completion(self, scheme: Scheme, k: int) -> Optional[float]:
        samples = self.completion.get((scheme, k), [])
        return mean(samples) if samples else None

    def mean_loss(self, scheme: Scheme, k: int) -> Optional[float]:
        samples = self.loss.get((scheme, k), [])
        return mean(samples) if samples else None

    def improvement(self, scheme: Scheme, k: int) -> Optional[float]:
        base = self.mean_completion(Scheme.BASELINE, k)
        ours = self.mean_completion(scheme, k)
        if base is None or ours is None:
            return None
        return (base - ours) / base


def summarize(records: DeploymentRecords) -> Fig15Result:
    completion: Dict[tuple, List[float]] = {}
    loss: Dict[tuple, List[float]] = {}
    for scheme, outcomes in records.items():
        for k in FRAMES:
            times = []
            losses = []
            for outcome in outcomes:
                t = outcome.result.frame_time(k)
                if t is not None:
                    times.append(t)
                lr = outcome.result.frame_loss_rate(k)
                if lr is not None:
                    losses.append(lr)
            completion[(scheme, k)] = times
            loss[(scheme, k)] = losses
    return Fig15Result(completion, loss)


def run(config=None) -> Fig15Result:
    records = run_deployment(config or HEADLINE_CONFIG, EVAL_SCHEMES)
    return summarize(records)

"""Scheme-frontier campaign: online adaptation under path drift.

The scheme registry (:mod:`repro.core.schemes`) makes initializers
pluggable; this experiment is the pinned evidence that the frontier
plugins actually buy something the static Table-I rows cannot.  The
campaign replays a drifting deployment (``DeploymentConfig.drift``:
each session's path may collapse to a sampled fraction of its
bandwidth shortly after the handshake) under the headline static
schemes and the three frontier plugins:

* ``adaptive`` — the per-OD online initializer.  It tracks a lower
  quantile of each chain's *observed* delivery rate and takes the min
  with the cookie's MaxBW, so a cookie minted before the path drifted
  no longer dictates the pacing rate alone.
* ``wira_bbr2`` — Wira's Table-I row on the BBRv2-style controller
  (inflight caps + explicit loss response).
* ``wira_ar`` — Wira with accelerated recovery (tighter loss
  thresholds, more PTO probes, gentler backoff).

**Gate** — under the pinned drifting population, ``adaptive``'s FFCT
p90 must beat ``wira_hx``'s: the cookie-trusting static row is exactly
the scheme stale history hurts, and beating it is what "online beats
offline under drift" means operationally.  Everything runs through the
unmodified fleet engine, so the campaign shards, checkpoints, resumes
and reports exactly like any other.

CLI::

    python -m repro.experiments.frontier [--quick] [--jobs N]
        [--output report.json] [--html report.html]

exits non-zero when the gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

from repro.fleet.aggregate import CampaignAggregate
from repro.fleet.engine import FleetConfig, run_campaign
from repro.fleet.htmlreport import render_html_report
from repro.fleet.report import build_report
from repro.workload.population import DeploymentConfig

#: Frontier comparison set: the paper's anchor rows plus the plugins.
FRONTIER_SCHEMES = (
    "baseline",
    "wira_hx",
    "wira",
    "adaptive",
    "wira_bbr2",
    "wira_ar",
)

#: Session-level drift probability of the pinned campaign.  High enough
#: that most chains meet at least one mid-transfer collapse (the regime
#: where learned history pays), low enough that steady sessions keep the
#: schemes honest on calm paths too.
FRONTIER_DRIFT = 0.5

#: The gate: adaptive FFCT p90 / wira_hx FFCT p90 must stay at or under
#: this.  The pinned campaign measures ≈ 0.89 (quick ≈ 0.94); 1.0 is
#: the claim itself, not a tuned margin.
GATE_RATIO_BOUND = 1.0


def frontier_config(quick: bool = False) -> FleetConfig:
    """The pinned drifting-population campaign (or its CI-scale cut)."""
    if quick:
        population = DeploymentConfig(n_od_pairs=24, seed=11, drift=FRONTIER_DRIFT)
        return FleetConfig(population=population, schemes=FRONTIER_SCHEMES, chunk_chains=8)
    population = DeploymentConfig(n_od_pairs=96, seed=11, drift=FRONTIER_DRIFT)
    return FleetConfig(population=population, schemes=FRONTIER_SCHEMES, chunk_chains=16)


def evaluate_gate(
    aggregate: CampaignAggregate, bound: float = GATE_RATIO_BOUND
) -> Dict[str, object]:
    """Apply the online-beats-offline gate to a frontier aggregate."""
    failures = []
    for value, agg in sorted(aggregate.schemes.items()):
        if agg.sessions != agg.completed:
            failures.append(
                f"incomplete sessions: {value} completed "
                f"{agg.completed}/{agg.sessions}"
            )
    adaptive_p90 = aggregate.schemes["adaptive"].ffct_sketch.percentile(90)
    static_p90 = aggregate.schemes["wira_hx"].ffct_sketch.percentile(90)
    ratio = adaptive_p90 / static_p90 if static_p90 > 0 else float("inf")
    if not ratio <= bound:
        failures.append(
            f"adaptive FFCT p90 {adaptive_p90:.4f}s is {ratio:.3f}x "
            f"wira_hx's {static_p90:.4f}s (bound {bound:.2f}x)"
        )
    return {
        "adaptive_ffct_p90": adaptive_p90,
        "wira_hx_ffct_p90": static_p90,
        "ratio": ratio,
        "bound": bound,
        "failures": failures,
        "passed": not failures,
    }


def run_frontier(
    quick: bool = False,
    jobs: Optional[int] = None,
    html_path: Optional[str] = None,
) -> Dict[str, object]:
    """Run the campaign, gate it, optionally render the HTML artifact."""
    config = frontier_config(quick=quick)
    aggregate = run_campaign(config, jobs=jobs)
    report = build_report(aggregate, key=config.key())
    report["drift"] = config.population.drift
    report["gate"] = evaluate_gate(aggregate)
    if html_path is not None:
        html = render_html_report(
            report,
            aggregate,
            config=config.to_json(),
            title="Scheme frontier: drift campaign",
        )
        with open(html_path, "w", encoding="utf-8") as fh:
            fh.write(html)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the scheme-frontier drift campaign and its gate."
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced scale (24 OD pairs) for CI"
    )
    parser.add_argument("--jobs", type=int, default=None, help="worker processes")
    parser.add_argument(
        "--output", type=str, default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--html", type=str, default=None, help="write the HTML campaign report here"
    )
    args = parser.parse_args(argv)

    report = run_frontier(quick=args.quick, jobs=args.jobs, html_path=args.html)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")

    gate = report["gate"]
    assert isinstance(gate, dict)
    print(  # noqa: T201
        f"frontier campaign: {report['total_sessions']} sessions, "
        f"drift={report['drift']}"
    )
    print(  # noqa: T201
        f"  adaptive FFCT p90 = {gate['adaptive_ffct_p90']:.4f}s, "
        f"wira_hx FFCT p90 = {gate['wira_hx_ffct_p90']:.4f}s "
        f"(ratio {gate['ratio']:.3f}, bound {gate['bound']:.2f})"
    )
    for failure in gate["failures"]:
        print(f"  GATE FAILURE: {failure}")  # noqa: T201
    print("PASSED" if gate["passed"] else "FAILED")  # noqa: T201
    return 0 if gate["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())

"""AMF0 encoding for FLV script data (``onMetaData``).

Implements the AMF0 subset FLV actually uses: numbers, booleans,
strings, nulls, ECMA arrays and anonymous objects (Adobe AMF0 spec
§2.2-2.10).  The Wira parser must skip the script-data tag while
*counting its size* into FF_Size (§IV-A), so a real codec — not a stub —
keeps the byte accounting honest.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

MARKER_NUMBER = 0x00
MARKER_BOOLEAN = 0x01
MARKER_STRING = 0x02
MARKER_OBJECT = 0x03
MARKER_NULL = 0x05
MARKER_ECMA_ARRAY = 0x08
MARKER_OBJECT_END = 0x09
MARKER_STRICT_ARRAY = 0x0A

_OBJECT_END = b"\x00\x00\x09"


class AmfError(ValueError):
    """Raised on unsupported values or malformed AMF0 data."""


def encode_value(value: Any) -> bytes:
    """Encode one Python value as AMF0."""
    if isinstance(value, bool):
        return bytes([MARKER_BOOLEAN, 1 if value else 0])
    if isinstance(value, (int, float)):
        return bytes([MARKER_NUMBER]) + struct.pack(">d", float(value))
    if isinstance(value, str):
        encoded = value.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise AmfError("string too long for AMF0 short string")
        return bytes([MARKER_STRING]) + struct.pack(">H", len(encoded)) + encoded
    if value is None:
        return bytes([MARKER_NULL])
    if isinstance(value, dict):
        out = bytearray([MARKER_ECMA_ARRAY])
        out += struct.pack(">I", len(value))
        for key, item in value.items():
            out += _encode_property_name(key)
            out += encode_value(item)
        out += _OBJECT_END
        return bytes(out)
    if isinstance(value, (list, tuple)):
        out = bytearray([MARKER_STRICT_ARRAY])
        out += struct.pack(">I", len(value))
        for item in value:
            out += encode_value(item)
        return bytes(out)
    raise AmfError(f"cannot encode {type(value).__name__} as AMF0")


def _encode_property_name(name: str) -> bytes:
    encoded = name.encode("utf-8")
    return struct.pack(">H", len(encoded)) + encoded


def decode_value(data: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Decode one AMF0 value; returns ``(value, next_offset)``."""
    if offset >= len(data):
        raise AmfError("buffer exhausted")
    marker = data[offset]
    offset += 1
    if marker == MARKER_NUMBER:
        _need(data, offset, 8)
        return struct.unpack_from(">d", data, offset)[0], offset + 8
    if marker == MARKER_BOOLEAN:
        _need(data, offset, 1)
        return bool(data[offset]), offset + 1
    if marker == MARKER_STRING:
        return _decode_short_string(data, offset)
    if marker == MARKER_NULL:
        return None, offset
    if marker == MARKER_ECMA_ARRAY:
        _need(data, offset, 4)
        offset += 4  # the count is advisory; parsing stops at object-end
        return _decode_properties(data, offset)
    if marker == MARKER_OBJECT:
        return _decode_properties(data, offset)
    if marker == MARKER_STRICT_ARRAY:
        _need(data, offset, 4)
        count = struct.unpack_from(">I", data, offset)[0]
        offset += 4
        items: List[Any] = []
        for _ in range(count):
            item, offset = decode_value(data, offset)
            items.append(item)
        return items, offset
    raise AmfError(f"unsupported AMF0 marker 0x{marker:02x}")


def _decode_short_string(data: bytes, offset: int) -> Tuple[str, int]:
    _need(data, offset, 2)
    length = struct.unpack_from(">H", data, offset)[0]
    offset += 2
    _need(data, offset, length)
    return data[offset : offset + length].decode("utf-8"), offset + length


def _decode_properties(data: bytes, offset: int) -> Tuple[Dict[str, Any], int]:
    properties: Dict[str, Any] = {}
    while True:
        if data[offset : offset + 3] == _OBJECT_END:
            return properties, offset + 3
        name, offset = _decode_short_string(data, offset)
        value, offset = decode_value(data, offset)
        properties[name] = value


def _need(data: bytes, offset: int, count: int) -> None:
    if offset + count > len(data):
        raise AmfError("truncated AMF0 data")


def encode_on_metadata(metadata: Dict[str, Any]) -> bytes:
    """FLV script-tag body: the string ``onMetaData`` + an ECMA array."""
    return encode_value("onMetaData") + encode_value(dict(metadata))


def decode_on_metadata(data: bytes) -> Dict[str, Any]:
    """Parse an FLV script-tag body back into a metadata dict."""
    name, offset = decode_value(data)
    if name != "onMetaData":
        raise AmfError(f"expected onMetaData, got {name!r}")
    metadata, _ = decode_value(data, offset)
    if not isinstance(metadata, dict):
        raise AmfError("onMetaData payload is not an array/object")
    return metadata

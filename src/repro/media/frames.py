"""Media frame and GOP value objects."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence


class MediaFrameType(enum.Enum):
    """Frame kinds the Wira parser distinguishes (§IV-A)."""

    VIDEO_I = "I"
    VIDEO_P = "P"
    VIDEO_B = "B"
    AUDIO = "audio"
    SCRIPT = "script"

    @property
    def is_video(self) -> bool:
        return self in (MediaFrameType.VIDEO_I, MediaFrameType.VIDEO_P, MediaFrameType.VIDEO_B)


@dataclass(frozen=True)
class MediaFrame:
    """One elementary frame before container muxing.

    ``payload`` is synthetic (zeros) — only its *size* matters for
    transmission studies — but it is carried verbatim through muxers and
    demuxers so container round-trips are byte-exact.
    """

    frame_type: MediaFrameType
    pts_ms: int
    payload: bytes

    @classmethod
    def synthetic(cls, frame_type: MediaFrameType, pts_ms: int, size: int) -> "MediaFrame":
        if size < 0:
            raise ValueError("frame size must be non-negative")
        return cls(frame_type, pts_ms, bytes(size))

    @property
    def size(self) -> int:
        return len(self.payload)

    @property
    def is_video(self) -> bool:
        return self.frame_type.is_video


@dataclass(frozen=True)
class Gop:
    """A group of pictures plus its leading non-video frames.

    The origin hands the proxy whole GOPs (Fig 6): script data and audio
    first (they precede the I frame in the FLV timeline), then the I
    frame and its dependent P/B frames.
    """

    frames: tuple

    def __post_init__(self) -> None:
        video = [f for f in self.frames if f.is_video]
        if not video:
            raise ValueError("a GOP must contain at least one video frame")
        if video[0].frame_type != MediaFrameType.VIDEO_I:
            raise ValueError("the first video frame of a GOP must be an I frame")

    @classmethod
    def of(cls, frames: Sequence[MediaFrame]) -> "Gop":
        return cls(tuple(frames))

    @property
    def video_frames(self) -> List[MediaFrame]:
        return [f for f in self.frames if f.is_video]

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self.frames)

    def first_frame_bytes(self, video_frame_threshold: int = 1) -> int:
        """Payload bytes of the paper's "first frame" (§IV-A).

        Everything up to and including the ``video_frame_threshold``-th
        video frame: protocol-level sizes are *not* included here — this
        is the media-level ground truth the parser's FF_Size (which adds
        container overhead) is checked against.
        """
        total = 0
        seen_video = 0
        for frame in self.frames:
            total += frame.size
            if frame.is_video:
                seen_video += 1
                if seen_video == video_frame_threshold:
                    return total
        raise ValueError(
            f"GOP has only {seen_video} video frames, need {video_frame_threshold}"
        )

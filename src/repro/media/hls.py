"""Minimal MPEG-TS segment muxing (the HLS wire format).

HLS delivers media as MPEG-TS segments; the Wira parser only needs
enough TS structure to (a) recognise the protocol (0x47 sync bytes every
188 bytes) and (b) walk frame boundaries with sizes and types.  This
module implements a real-but-small TS packetizer:

* fixed 188-byte packets, sync byte 0x47;
* video on PID 256, audio on PID 257, metadata on PID 258;
* one PES packet per frame, ``payload_unit_start_indicator`` marking
  frame starts, PES header carrying a 33-bit PTS;
* adaptation-field stuffing to fill the final packet of each frame, with
  ``random_access_indicator`` set on I frames.

PAT/PMT tables are omitted (the demuxer uses the fixed PIDs) — they
carry no frame-boundary information.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.media.frames import MediaFrame, MediaFrameType

TS_PACKET_SIZE = 188
TS_SYNC_BYTE = 0x47

PID_VIDEO = 256
PID_AUDIO = 257
PID_META = 258

_FRAME_TO_PID = {
    MediaFrameType.VIDEO_I: PID_VIDEO,
    MediaFrameType.VIDEO_P: PID_VIDEO,
    MediaFrameType.VIDEO_B: PID_VIDEO,
    MediaFrameType.AUDIO: PID_AUDIO,
    MediaFrameType.SCRIPT: PID_META,
}

# PES stream ids: 0xE0 video, 0xC0 audio, 0xBD private data.
_PID_TO_STREAM_ID = {PID_VIDEO: 0xE0, PID_AUDIO: 0xC0, PID_META: 0xBD}

# First payload byte after the PES header encodes the video frame type,
# mirroring FLV's control nibble so frame types survive the round trip.
_VIDEO_NIBBLE = {
    MediaFrameType.VIDEO_I: 1,
    MediaFrameType.VIDEO_P: 2,
    MediaFrameType.VIDEO_B: 3,
}
_NIBBLE_VIDEO = {v: k for k, v in _VIDEO_NIBBLE.items()}


class TsError(ValueError):
    """Raised on malformed TS data."""


@dataclass(frozen=True)
class TsFrame:
    """One reassembled PES payload."""

    pid: int
    pts_ms: int
    payload: bytes
    random_access: bool
    wire_bytes: int = 0
    """TS packet bytes (multiples of 188) that carried this frame."""

    @property
    def media_frame_type(self) -> MediaFrameType:
        if self.pid == PID_META:
            return MediaFrameType.SCRIPT
        if self.pid == PID_AUDIO:
            return MediaFrameType.AUDIO
        if self.pid == PID_VIDEO:
            if not self.payload:
                raise TsError("empty video PES payload")
            return _NIBBLE_VIDEO[self.payload[0] >> 4]
        raise TsError(f"unexpected PID {self.pid}")

    @property
    def is_video(self) -> bool:
        return self.pid == PID_VIDEO


def _pes_packet(stream_id: int, pts_ms: int, payload: bytes) -> bytes:
    pts = int(pts_ms * 90)  # 90 kHz clock
    pts_bytes = bytes(
        [
            0x21 | ((pts >> 29) & 0x0E),
            (pts >> 22) & 0xFF,
            0x01 | ((pts >> 14) & 0xFE),
            (pts >> 7) & 0xFF,
            0x01 | ((pts << 1) & 0xFE),
        ]
    )
    header = b"\x00\x00\x01" + bytes([stream_id])
    # PES packet length of 0 means "unbounded" for video; use it always
    # since frames can exceed 64 kB.
    header += struct.pack(">H", 0)
    header += bytes([0x80, 0x80, len(pts_bytes)])  # flags: PTS only
    header += pts_bytes
    return header + payload


def mux(frames: Iterable[MediaFrame]) -> bytes:
    """Serialise frames as an MPEG-TS segment."""
    out = bytearray()
    continuity: Dict[int, int] = {}
    for frame in frames:
        pid = _FRAME_TO_PID[frame.frame_type]
        if frame.frame_type in _VIDEO_NIBBLE:
            body = bytes([(_VIDEO_NIBBLE[frame.frame_type] << 4) | 7]) + frame.payload
        else:
            body = frame.payload
        pes = _pes_packet(_PID_TO_STREAM_ID[pid], frame.pts_ms, body)
        random_access = frame.frame_type == MediaFrameType.VIDEO_I
        offset = 0
        first = True
        while offset < len(pes) or first:
            cc = continuity.get(pid, 0)
            continuity[pid] = (cc + 1) & 0x0F
            remaining = len(pes) - offset
            header = bytearray(4)
            header[0] = TS_SYNC_BYTE
            header[1] = ((0x40 if first else 0x00) | (pid >> 8)) & 0x5F
            header[2] = pid & 0xFF
            payload_capacity = TS_PACKET_SIZE - 4
            needs_adaptation = remaining < payload_capacity or (first and random_access)
            if needs_adaptation:
                adaptation_len = payload_capacity - min(remaining, payload_capacity - 2) - 1
                if adaptation_len < 1:
                    adaptation_len = 1
                flags = 0x40 if (first and random_access) else 0x00
                adaptation = bytes([adaptation_len])
                if adaptation_len >= 1:
                    adaptation += bytes([flags])
                    adaptation += b"\xff" * (adaptation_len - 1)
                header[3] = 0x30 | cc  # adaptation + payload
                take = payload_capacity - 1 - adaptation_len
                chunk = pes[offset : offset + take]
                out += header + adaptation + chunk
                offset += take
            else:
                header[3] = 0x10 | cc  # payload only
                chunk = pes[offset : offset + payload_capacity]
                out += header + chunk
                offset += payload_capacity
            first = False
    return bytes(out)


class TsDemuxer:
    """Incremental TS parser reassembling one PES frame per unit start."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._assembling: Dict[int, dict] = {}

    def feed(self, data: bytes) -> List[TsFrame]:
        self._buffer += data
        frames: List[TsFrame] = []
        while len(self._buffer) >= TS_PACKET_SIZE:
            packet = bytes(self._buffer[:TS_PACKET_SIZE])
            del self._buffer[:TS_PACKET_SIZE]
            frames.extend(self._parse_packet(packet))
        return frames

    def _parse_packet(self, packet: bytes) -> List[TsFrame]:
        if packet[0] != TS_SYNC_BYTE:
            raise TsError("lost TS sync")
        unit_start = bool(packet[1] & 0x40)
        pid = ((packet[1] & 0x1F) << 8) | packet[2]
        has_adaptation = bool(packet[3] & 0x20)
        has_payload = bool(packet[3] & 0x10)
        offset = 4
        random_access = False
        if has_adaptation:
            adaptation_len = packet[4]
            if adaptation_len >= 1:
                random_access = bool(packet[5] & 0x40)
            offset = 5 + adaptation_len
        if not has_payload:
            return []
        payload = packet[offset:]
        done: List[TsFrame] = []
        if unit_start:
            # The muxer writes each frame's packets contiguously, so a new
            # unit start (on any PID) means every pending frame is complete;
            # finishing them all preserves the original frame order.
            done.extend(self.flush())
            self._assembling[pid] = {
                "data": bytearray(payload),
                "random_access": random_access,
                "wire_bytes": TS_PACKET_SIZE,
            }
        elif pid in self._assembling:
            self._assembling[pid]["data"] += payload
            self._assembling[pid]["wire_bytes"] += TS_PACKET_SIZE
        return done

    def _finish(self, pid: int) -> Optional[TsFrame]:
        state = self._assembling.pop(pid, None)
        if state is None:
            return None
        data = bytes(state["data"])
        if data[:3] != b"\x00\x00\x01":
            raise TsError("missing PES start code")
        header_len = data[8]
        pts = 0
        if data[7] & 0x80:
            p = data[9:14]
            pts = (
                ((p[0] >> 1) & 0x07) << 30
                | p[1] << 22
                | (p[2] >> 1) << 14
                | p[3] << 7
                | p[4] >> 1
            )
        payload = data[9 + header_len :]
        return TsFrame(
            pid, int(pts / 90), payload, state["random_access"], state["wire_bytes"]
        )

    def flush(self) -> List[TsFrame]:
        """Finish any partially assembled frames (end of segment)."""
        frames = []
        for pid in list(self._assembling):
            frame = self._finish(pid)
            if frame is not None:
                frames.append(frame)
        return frames

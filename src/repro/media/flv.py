"""Byte-exact FLV container muxing and demuxing (Adobe FLV spec v10).

Layout produced/consumed::

    "FLV" | version | flags | data_offset(9)      — 9-byte file header
    PreviousTagSize0 = 0                          — u32
    repeat:
        TagType(u8) DataSize(u24) Timestamp(u24) TimestampExt(u8)
        StreamID(u24 = 0) | Data[DataSize]
        PreviousTagSize = 11 + DataSize           — u32

Video tag data leads with a frame-type/codec byte (keyframe=1,
inter=2, disposable-inter=3; codec 7 = AVC); audio leads with the
sound-format byte (0xAF = AAC); script tags carry AMF0 ``onMetaData``.

The incremental :class:`FlvDemuxer` is what the Wira *client* runs to
detect first-frame completion; the server-side Frame Perception parser
(:mod:`repro.core.frame_perception`) walks the same structure but
follows Algorithm 1's accounting rules.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.media.amf import decode_on_metadata, encode_on_metadata
from repro.media.frames import MediaFrame, MediaFrameType

FLV_SIGNATURE = b"FLV"
FLV_VERSION = 1
FLV_HEADER_LEN = 9
PREVIOUS_TAG_SIZE_LEN = 4
TAG_HEADER_LEN = 11

TAG_AUDIO = 8
TAG_VIDEO = 9
TAG_SCRIPT = 18

_VIDEO_FRAME_TO_NIBBLE = {
    MediaFrameType.VIDEO_I: 1,  # keyframe
    MediaFrameType.VIDEO_P: 2,  # inter frame
    MediaFrameType.VIDEO_B: 3,  # disposable inter frame
}
_NIBBLE_TO_VIDEO_FRAME = {v: k for k, v in _VIDEO_FRAME_TO_NIBBLE.items()}
_CODEC_AVC = 7
_AUDIO_HEADER_AAC = 0xAF


class FlvError(ValueError):
    """Raised on malformed FLV data."""


@dataclass(frozen=True)
class FlvTag:
    """One demuxed FLV tag."""

    tag_type: int
    timestamp_ms: int
    data: bytes

    @property
    def media_frame_type(self) -> MediaFrameType:
        if self.tag_type == TAG_SCRIPT:
            return MediaFrameType.SCRIPT
        if self.tag_type == TAG_AUDIO:
            return MediaFrameType.AUDIO
        if self.tag_type == TAG_VIDEO:
            if not self.data:
                raise FlvError("empty video tag")
            nibble = self.data[0] >> 4
            try:
                return _NIBBLE_TO_VIDEO_FRAME[nibble]
            except KeyError:
                raise FlvError(f"unknown video frame type nibble {nibble}") from None
        raise FlvError(f"unknown tag type {self.tag_type}")

    @property
    def is_video(self) -> bool:
        return self.tag_type == TAG_VIDEO

    def to_media_frame(self) -> MediaFrame:
        """Strip container framing back to the elementary frame."""
        frame_type = self.media_frame_type
        payload = self.data if frame_type == MediaFrameType.SCRIPT else self.data[1:]
        return MediaFrame(frame_type, self.pts_or_zero, payload)

    @property
    def pts_or_zero(self) -> int:
        return self.timestamp_ms

    @property
    def on_wire_size(self) -> int:
        """Tag header + body + trailing PreviousTagSize."""
        return TAG_HEADER_LEN + len(self.data) + PREVIOUS_TAG_SIZE_LEN


def file_header(has_audio: bool = True, has_video: bool = True) -> bytes:
    """9-byte FLV header plus the zero PreviousTagSize0 word."""
    flags = (0x04 if has_audio else 0) | (0x01 if has_video else 0)
    header = FLV_SIGNATURE + bytes([FLV_VERSION, flags]) + struct.pack(">I", FLV_HEADER_LEN)
    return header + struct.pack(">I", 0)


def encode_tag(tag_type: int, timestamp_ms: int, data: bytes) -> bytes:
    """Tag header + data + PreviousTagSize."""
    if tag_type not in (TAG_AUDIO, TAG_VIDEO, TAG_SCRIPT):
        raise FlvError(f"invalid tag type {tag_type}")
    if timestamp_ms < 0:
        raise FlvError("negative timestamp")
    size = len(data)
    if size >= 1 << 24:
        raise FlvError("tag body too large")
    out = bytearray()
    out.append(tag_type)
    out += size.to_bytes(3, "big")
    out += (timestamp_ms & 0xFFFFFF).to_bytes(3, "big")
    out.append((timestamp_ms >> 24) & 0xFF)
    out += b"\x00\x00\x00"  # StreamID, always 0
    out += data
    out += struct.pack(">I", TAG_HEADER_LEN + size)
    return bytes(out)


def encode_frame(frame: MediaFrame) -> bytes:
    """Wrap one media frame as an FLV tag (with PreviousTagSize)."""
    if frame.frame_type == MediaFrameType.SCRIPT:
        return encode_tag(TAG_SCRIPT, frame.pts_ms, frame.payload)
    if frame.frame_type == MediaFrameType.AUDIO:
        return encode_tag(TAG_AUDIO, frame.pts_ms, bytes([_AUDIO_HEADER_AAC]) + frame.payload)
    nibble = _VIDEO_FRAME_TO_NIBBLE[frame.frame_type]
    control = (nibble << 4) | _CODEC_AVC
    return encode_tag(TAG_VIDEO, frame.pts_ms, bytes([control]) + frame.payload)


def script_frame(metadata: Dict[str, Any], pts_ms: int = 0) -> MediaFrame:
    """Build the ``onMetaData`` script frame a stream leads with."""
    return MediaFrame(MediaFrameType.SCRIPT, pts_ms, encode_on_metadata(metadata))


def mux(frames: Iterable[MediaFrame], include_header: bool = True) -> bytes:
    """Serialise media frames as an FLV byte stream."""
    out = bytearray()
    if include_header:
        out += file_header()
    for frame in frames:
        out += encode_frame(frame)
    return bytes(out)


class FlvDemuxer:
    """Incremental FLV parser.

    Feed arbitrary byte slices as they arrive off the transport; parsed
    tags come back as soon as they are complete.  This is the client's
    tool for timing per-frame completion (FFCT, Fig 11; follow-up
    frames, Fig 15).
    """

    def __init__(self, expect_header: bool = True) -> None:
        self._buffer = bytearray()
        self._header_parsed = not expect_header
        self.tags_parsed = 0
        self.metadata: Optional[Dict[str, Any]] = None

    def feed(self, data: bytes) -> List[FlvTag]:
        """Ingest bytes; returns all tags completed by this chunk."""
        self._buffer += data
        tags: List[FlvTag] = []
        if not self._header_parsed:
            if len(self._buffer) < FLV_HEADER_LEN + PREVIOUS_TAG_SIZE_LEN:
                return tags
            if self._buffer[:3] != FLV_SIGNATURE:
                raise FlvError("missing FLV signature")
            data_offset = struct.unpack_from(">I", self._buffer, 5)[0]
            if data_offset < FLV_HEADER_LEN:
                raise FlvError("implausible data offset")
            del self._buffer[: data_offset + PREVIOUS_TAG_SIZE_LEN]
            self._header_parsed = True
        while True:
            tag = self._try_parse_tag()
            if tag is None:
                break
            if tag.tag_type == TAG_SCRIPT and self.metadata is None:
                try:
                    self.metadata = decode_on_metadata(tag.data)
                except Exception:  # noqa: BLE001 - tolerate foreign script tags
                    self.metadata = None
            tags.append(tag)
            self.tags_parsed += 1
        return tags

    def _try_parse_tag(self) -> Optional[FlvTag]:
        if len(self._buffer) < TAG_HEADER_LEN:
            return None
        tag_type = self._buffer[0]
        if tag_type not in (TAG_AUDIO, TAG_VIDEO, TAG_SCRIPT):
            raise FlvError(f"invalid tag type {tag_type}")
        size = int.from_bytes(self._buffer[1:4], "big")
        total = TAG_HEADER_LEN + size + PREVIOUS_TAG_SIZE_LEN
        if len(self._buffer) < total:
            return None
        timestamp = int.from_bytes(self._buffer[4:7], "big") | (self._buffer[7] << 24)
        body = bytes(self._buffer[TAG_HEADER_LEN : TAG_HEADER_LEN + size])
        prev_size = struct.unpack_from(">I", self._buffer, TAG_HEADER_LEN + size)[0]
        if prev_size != TAG_HEADER_LEN + size:
            raise FlvError(
                f"PreviousTagSize mismatch: {prev_size} != {TAG_HEADER_LEN + size}"
            )
        del self._buffer[:total]
        return FlvTag(tag_type, timestamp, body)


def demux(data: bytes, expect_header: bool = True) -> List[FlvTag]:
    """One-shot demux of a complete FLV byte string."""
    demuxer = FlvDemuxer(expect_header=expect_header)
    return demuxer.feed(data)

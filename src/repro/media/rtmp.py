"""Minimal RTMP chunk-stream muxing.

The Wira parser dispatches on ``PtlType`` (Algorithm 1: "Obtain PtlType;
if PtlType ∉ PtlSet return -1"), so the reproduction needs more than one
live container.  This module implements a working subset of the RTMP
chunk stream (Adobe RTMP spec §5.3): type-0 chunk headers carrying
audio (8) / video (9) / data (18) messages, with type-3 continuation
headers when a message exceeds the chunk size.

The stream is prefixed with the single C0 version byte (0x03) that also
serves as the protocol signature for parser dispatch.  The handshake
random blobs (C1/S1) are omitted — they carry no framing information.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.media.frames import MediaFrame, MediaFrameType

RTMP_VERSION_BYTE = 0x03
DEFAULT_CHUNK_SIZE = 4096

MSG_AUDIO = 8
MSG_VIDEO = 9
MSG_DATA = 18

_CSID_MEDIA = 4

_FRAME_TO_MSG = {
    MediaFrameType.AUDIO: MSG_AUDIO,
    MediaFrameType.SCRIPT: MSG_DATA,
    MediaFrameType.VIDEO_I: MSG_VIDEO,
    MediaFrameType.VIDEO_P: MSG_VIDEO,
    MediaFrameType.VIDEO_B: MSG_VIDEO,
}

_VIDEO_NIBBLE = {
    MediaFrameType.VIDEO_I: 1,
    MediaFrameType.VIDEO_P: 2,
    MediaFrameType.VIDEO_B: 3,
}
_NIBBLE_VIDEO = {v: k for k, v in _VIDEO_NIBBLE.items()}


class RtmpError(ValueError):
    """Raised on malformed RTMP chunk data."""


@dataclass(frozen=True)
class RtmpMessage:
    """One reassembled RTMP message."""

    message_type: int
    timestamp_ms: int
    payload: bytes

    @property
    def media_frame_type(self) -> MediaFrameType:
        if self.message_type == MSG_DATA:
            return MediaFrameType.SCRIPT
        if self.message_type == MSG_AUDIO:
            return MediaFrameType.AUDIO
        if self.message_type == MSG_VIDEO:
            if not self.payload:
                raise RtmpError("empty video message")
            return _NIBBLE_VIDEO[self.payload[0] >> 4]
        raise RtmpError(f"unknown message type {self.message_type}")

    @property
    def is_video(self) -> bool:
        return self.message_type == MSG_VIDEO


def _message_payload(frame: MediaFrame) -> bytes:
    if frame.frame_type == MediaFrameType.SCRIPT:
        return frame.payload
    if frame.frame_type == MediaFrameType.AUDIO:
        return b"\xaf" + frame.payload
    control = (_VIDEO_NIBBLE[frame.frame_type] << 4) | 7
    return bytes([control]) + frame.payload


def mux(
    frames: Iterable[MediaFrame],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    include_version_byte: bool = True,
) -> bytes:
    """Serialise frames as an RTMP chunk stream."""
    out = bytearray()
    if include_version_byte:
        out.append(RTMP_VERSION_BYTE)
    for frame in frames:
        payload = _message_payload(frame)
        message_type = _FRAME_TO_MSG[frame.frame_type]
        # Type-0 chunk header: fmt=0, csid, timestamp u24, length u24,
        # type u8, stream id u32 little-endian.
        out.append((0 << 6) | _CSID_MEDIA)
        out += min(frame.pts_ms, 0xFFFFFF).to_bytes(3, "big")
        out += len(payload).to_bytes(3, "big")
        out.append(message_type)
        out += struct.pack("<I", 1)
        out += payload[:chunk_size]
        sent = min(len(payload), chunk_size)
        while sent < len(payload):
            out.append((3 << 6) | _CSID_MEDIA)  # type-3 continuation
            take = min(chunk_size, len(payload) - sent)
            out += payload[sent : sent + take]
            sent += take
    return bytes(out)


class RtmpDemuxer:
    """Incremental RTMP chunk-stream parser (single chunk stream)."""

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE, expect_version_byte: bool = True) -> None:
        self.chunk_size = chunk_size
        self._buffer = bytearray()
        self._version_seen = not expect_version_byte
        self._pending: Optional[dict] = None

    def feed(self, data: bytes) -> List[RtmpMessage]:
        self._buffer += data
        messages: List[RtmpMessage] = []
        if not self._version_seen:
            if not self._buffer:
                return messages
            if self._buffer[0] != RTMP_VERSION_BYTE:
                raise RtmpError(f"bad RTMP version byte 0x{self._buffer[0]:02x}")
            del self._buffer[:1]
            self._version_seen = True
        while True:
            message = self._try_parse()
            if message is None:
                break
            messages.append(message)
        return messages

    def _try_parse(self) -> Optional[RtmpMessage]:
        if self._pending is None:
            # Need a type-0 header: 1 + 11 bytes.
            if len(self._buffer) < 12:
                return None
            fmt = self._buffer[0] >> 6
            if fmt != 0:
                raise RtmpError(f"expected type-0 chunk header, got fmt={fmt}")
            timestamp = int.from_bytes(self._buffer[1:4], "big")
            length = int.from_bytes(self._buffer[4:7], "big")
            message_type = self._buffer[7]
            del self._buffer[:12]
            self._pending = {
                "timestamp": timestamp,
                "length": length,
                "type": message_type,
                "data": bytearray(),
            }
        pending = self._pending
        while len(pending["data"]) < pending["length"]:
            already = len(pending["data"])
            if already and already % self.chunk_size == 0:
                # Expect a type-3 continuation byte.
                if not self._buffer:
                    return None
                if self._buffer[0] >> 6 != 3:
                    raise RtmpError("expected type-3 continuation header")
                del self._buffer[:1]
            need = min(self.chunk_size - (already % self.chunk_size), pending["length"] - already)
            if not self._buffer:
                return None
            take = min(need, len(self._buffer))
            pending["data"] += self._buffer[:take]
            del self._buffer[:take]
            if take < need:
                return None
        self._pending = None
        return RtmpMessage(pending["type"], pending["timestamp"], bytes(pending["data"]))

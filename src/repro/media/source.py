"""Live encoder model: GOP structure and frame-size processes.

The paper's measurements (Fig 1) show first-frame sizes differ *between*
streams (resolution/bitrate mix: mean 43.1 KB, 30 % under 30 KB, 20 %
over 60 KB) and *within* a stream over time (picture complexity: 45–130
KB when sampling one stream every 5 s).  :class:`LiveSource` models both:

* a :class:`StreamProfile` fixes the per-stream knobs (bitrate, fps, GOP
  length, frame-type weights, optionally a first-frame size target);
* picture complexity follows a log-AR(1) process across GOPs, plus
  per-frame lognormal jitter, producing the intra-stream variation.

Everything is deterministic given the profile's seed: requesting the
same GOP twice yields identical frames.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.media.amf import encode_on_metadata
from repro.media.frames import Gop, MediaFrame, MediaFrameType


@dataclass(frozen=True)
class StreamProfile:
    """Static description of one live stream."""

    video_bitrate_bps: float = 1_500_000.0
    fps: int = 25
    gop_seconds: float = 2.0
    b_frames_per_p: int = 2  # transmit pattern: I, then (P, B, B) groups
    audio_bitrate_bps: float = 128_000.0
    audio_fps: float = 43.0  # AAC at 44.1 kHz, 1024 samples/frame
    i_frame_weight: float = 8.0
    p_frame_weight: float = 2.5
    b_frame_weight: float = 1.0
    complexity_rho: float = 0.85  # AR(1) persistence, per GOP
    complexity_sigma: float = 0.20  # AR(1) innovation (log scale)
    size_jitter: float = 0.10  # per-frame lognormal sigma
    first_frame_target_bytes: Optional[int] = None
    width: int = 1280
    height: int = 720
    seed: int = 0

    def __post_init__(self) -> None:
        if self.fps <= 0 or self.gop_seconds <= 0:
            raise ValueError("fps and gop_seconds must be positive")
        if self.video_bitrate_bps <= 0:
            raise ValueError("video bitrate must be positive")

    @property
    def video_frames_per_gop(self) -> int:
        return max(1, int(round(self.fps * self.gop_seconds)))

    @property
    def audio_frame_bytes(self) -> int:
        return max(1, int(self.audio_bitrate_bps / 8.0 / self.audio_fps))


class LiveSource:
    """Deterministic frame generator for one live stream."""

    def __init__(self, profile: StreamProfile) -> None:
        self.profile = profile
        self._complexity_cache: List[float] = []
        self._jitter_cache: Dict[int, List[float]] = {}
        self._rng = random.Random(profile.seed)
        self._metadata_payload = encode_on_metadata(self._metadata())

    def _metadata(self) -> Dict[str, object]:
        p = self.profile
        return {
            "duration": 0.0,
            "width": float(p.width),
            "height": float(p.height),
            "videodatarate": p.video_bitrate_bps / 1000.0,
            "framerate": float(p.fps),
            "videocodecid": 7.0,
            "audiodatarate": p.audio_bitrate_bps / 1000.0,
            "audiosamplerate": 44100.0,
            "audiosamplesize": 16.0,
            "stereo": True,
            "audiocodecid": 10.0,
            "encoder": "repro-live-encoder/1.0",
            "metadatacreator": "repro",
        }

    # ------------------------------------------------------------------
    # Complexity process

    def _complexity(self, gop_index: int) -> float:
        """Complexity multiplier for GOP ``gop_index`` (mean ≈ 1)."""
        if gop_index < 0:
            raise ValueError("gop index must be non-negative")
        while len(self._complexity_cache) <= gop_index:
            # String seeds hash via sha512 inside random.seed(), which is
            # stable across processes (unlike hash() of tuples/strings).
            rng = random.Random(f"{self.profile.seed}:{len(self._complexity_cache)}:cx")
            if not self._complexity_cache:
                log_c = rng.gauss(0.0, self._stationary_sigma())
            else:
                log_prev = math.log(self._complexity_cache[-1])
                log_c = self.profile.complexity_rho * log_prev + rng.gauss(
                    0.0, self.profile.complexity_sigma
                )
            self._complexity_cache.append(math.exp(log_c))
        return self._complexity_cache[gop_index]

    def _stationary_sigma(self) -> float:
        rho = self.profile.complexity_rho
        return self.profile.complexity_sigma / math.sqrt(max(1e-9, 1.0 - rho * rho))

    # ------------------------------------------------------------------
    # Frame-size model

    def _base_sizes(self, gop_index: int) -> Dict[MediaFrameType, float]:
        p = self.profile
        n_video = p.video_frames_per_gop
        groups = max(0, (n_video - 1) // (1 + p.b_frames_per_p))
        n_p = groups
        n_b = n_video - 1 - n_p
        gop_bytes = p.video_bitrate_bps / 8.0 * p.gop_seconds
        weight_sum = p.i_frame_weight + n_p * p.p_frame_weight + n_b * p.b_frame_weight
        scale = gop_bytes / weight_sum
        complexity = self._complexity(gop_index)
        i_size = p.i_frame_weight * scale
        if p.first_frame_target_bytes is not None:
            # Pin the *nominal* first frame (script + audio + I) to the
            # target; complexity still modulates around it.
            overhead = len(self._metadata_payload) + p.audio_frame_bytes
            i_size = max(1000.0, p.first_frame_target_bytes - overhead)
        return {
            MediaFrameType.VIDEO_I: i_size * complexity,
            MediaFrameType.VIDEO_P: p.p_frame_weight * scale * complexity,
            MediaFrameType.VIDEO_B: p.b_frame_weight * scale * complexity,
        }

    def _jitter(self, gop_index: int, frame_index: int) -> float:
        # String-seeding runs sha512 per Random; GOPs are re-requested by
        # every viewer of the stream, so memoise per (gop, frame).
        per_gop = self._jitter_cache.get(gop_index)
        if per_gop is None:
            per_gop = self._jitter_cache[gop_index] = []
        while len(per_gop) <= frame_index:
            rng = random.Random(f"{self.profile.seed}:{gop_index}:{len(per_gop)}:jit")
            per_gop.append(math.exp(rng.gauss(0.0, self.profile.size_jitter)))
        return per_gop[frame_index]

    # ------------------------------------------------------------------
    # Public API

    def gop_index_at(self, time_s: float) -> int:
        """Index of the GOP whose playback window contains ``time_s``."""
        if time_s < 0:
            raise ValueError("time must be non-negative")
        return int(time_s / self.profile.gop_seconds)

    def gop_at(self, time_s: float) -> Gop:
        """The frame bundle a new viewer joining at ``time_s`` receives.

        Layout follows the paper's running example (§IV-A): script data,
        a leading audio frame, the I frame, then (P, B…) groups with
        audio interleaved at the audio frame rate.
        """
        return self.gop(self.gop_index_at(time_s))

    def gop(self, gop_index: int) -> Gop:
        p = self.profile
        base = self._base_sizes(gop_index)
        gop_start_ms = int(gop_index * p.gop_seconds * 1000)
        frames: List[MediaFrame] = [
            MediaFrame(MediaFrameType.SCRIPT, gop_start_ms, self._metadata_payload)
        ]
        audio_period_ms = 1000.0 / p.audio_fps
        frames.append(
            MediaFrame.synthetic(MediaFrameType.AUDIO, gop_start_ms, p.audio_frame_bytes)
        )
        next_audio_ms = gop_start_ms + audio_period_ms

        video_types = self._video_pattern()
        frame_period_ms = 1000.0 / p.fps
        for k, frame_type in enumerate(video_types):
            pts = gop_start_ms + int(k * frame_period_ms)
            while next_audio_ms <= pts:
                frames.append(
                    MediaFrame.synthetic(
                        MediaFrameType.AUDIO, int(next_audio_ms), p.audio_frame_bytes
                    )
                )
                next_audio_ms += audio_period_ms
            size = max(200, int(base[frame_type] * self._jitter(gop_index, k)))
            frames.append(MediaFrame.synthetic(frame_type, pts, size))
        return Gop.of(frames)

    def _video_pattern(self) -> List[MediaFrameType]:
        p = self.profile
        pattern = [MediaFrameType.VIDEO_I]
        while len(pattern) < p.video_frames_per_gop:
            pattern.append(MediaFrameType.VIDEO_P)
            for _ in range(p.b_frames_per_p):
                if len(pattern) >= p.video_frames_per_gop:
                    break
                pattern.append(MediaFrameType.VIDEO_B)
        return pattern

    def first_frame_size_at(self, time_s: float, video_frame_threshold: int = 1) -> int:
        """Media-level first-frame size for a join at ``time_s``."""
        return self.gop_at(time_s).first_frame_bytes(video_frame_threshold)

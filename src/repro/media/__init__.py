"""Live-streaming media substrate.

The paper's proxy serves HTTP-FLV live streams pulled from a CDN origin
(§VI: "the live-streaming data is decoded using HTTP-FLV protocol").
This package provides everything the reproduction needs on that front:

* media frame / GOP modelling (:mod:`repro.media.frames`),
* AMF0 script-data codec (:mod:`repro.media.amf`),
* a byte-exact FLV muxer/demuxer (:mod:`repro.media.flv`),
* minimal RTMP chunk-stream and MPEG-TS/HLS muxers
  (:mod:`repro.media.rtmp`, :mod:`repro.media.hls`) so the Wira frame
  parser has multiple ``PtlType`` values to dispatch on (Algorithm 1),
* a live encoder model (:mod:`repro.media.source`) that generates GOPs
  whose first-frame sizes vary inter- and intra-stream as measured in
  the paper's Fig 1.
"""

from repro.media.frames import Gop, MediaFrame, MediaFrameType
from repro.media.source import LiveSource, StreamProfile

__all__ = [
    "Gop",
    "LiveSource",
    "MediaFrame",
    "MediaFrameType",
    "StreamProfile",
]

"""The single parse point for every ``WIRA_*`` environment knob.

Before this module existed the knobs were read ad hoc where they were
consumed — ``WIRA_JOBS``/``WIRA_CACHE_DIR``/``WIRA_DISK_CACHE`` inside
the replay runner, ``WIRA_SANITIZE`` in :mod:`repro.sanitize`,
``WIRA_TRACE``/``WIRA_TRACE_DIR`` in :mod:`repro.obs` — each with its
own string-to-value convention.  :class:`Settings` is now the one place
those strings become values; the legacy accessors
(:func:`repro.sanitize.env_requested`,
:func:`repro.obs.env_requested`, :func:`repro.obs.env_trace_dir`,
:func:`repro.experiments.runner.resolve_jobs` …) all delegate here, so
their historical semantics — truthy sets, defaults, invalid-value
fallbacks — are defined exactly once and covered by one test suite.

``current()`` re-reads the environment on every call unless an explicit
:class:`Settings` has been installed with :func:`configure` (or scoped
with :func:`overridden`): the parse *logic* lives at a single point, but
tests that monkeypatch ``os.environ`` keep working unchanged.
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Iterator, Mapping, Optional

logger = logging.getLogger(__name__)

#: Values accepted as "on" for opt-in boolean knobs (match the historic
#: ``sanitize``/``obs`` parsers).
_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Values accepted as "off" for default-on boolean knobs (matches the
#: historic ``WIRA_DISK_CACHE`` parser).
_FALSY = frozenset({"0", "false", "no", "off"})

#: Every environment variable the repro package reads.  Anything not in
#: this table is not a supported knob.
KNOWN_KNOBS = (
    "WIRA_JOBS",
    "WIRA_CACHE_DIR",
    "WIRA_DISK_CACHE",
    "WIRA_SANITIZE",
    "WIRA_TRACE",
    "WIRA_TRACE_DIR",
    "WIRA_BATCH",
    "WIRA_FAST_LINK",
)


def default_cache_dir() -> Path:
    """Where replay results persist when ``WIRA_CACHE_DIR`` is unset."""
    return Path(os.path.expanduser("~")) / ".cache" / "wira-repro"


@dataclass(frozen=True)
class Settings:
    """Parsed runtime configuration, one field per ``WIRA_*`` knob."""

    #: ``WIRA_JOBS`` — default worker-process count for sharded replays,
    #: robustness matrices and fleet campaigns (1 = serial reference).
    jobs: int = 1
    #: ``WIRA_CACHE_DIR`` — directory holding persisted replay results.
    cache_dir: Path = field(default_factory=default_cache_dir)
    #: ``WIRA_DISK_CACHE`` — persistent result cache on/off (default on).
    disk_cache: bool = True
    #: ``WIRA_SANITIZE`` — install the runtime transport sanitizer at
    #: import time (default off).
    sanitize: bool = False
    #: ``WIRA_TRACE`` — install the structured trace bus at import time
    #: (default off).
    trace: bool = False
    #: ``WIRA_TRACE_DIR`` — trace output directory (memory-only when
    #: ``None``).
    trace_dir: Optional[Path] = None
    #: ``WIRA_BATCH`` — run serial replays through the batched
    #: multi-session kernel (default on; results are byte-identical,
    #: the knob exists as an escape hatch / reference baseline).
    batch: bool = True
    #: ``WIRA_FAST_LINK`` — direct-delivery link scheduling for
    #: unimpaired sessions (default on; byte-identical, escape hatch).
    fast_link: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 1:
            object.__setattr__(self, "jobs", 1)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "Settings":
        """Parse a ``Settings`` from an environment mapping.

        ``environ`` defaults to ``os.environ``; passing a plain dict
        makes the parser trivially testable and keeps this classmethod
        the *only* code that interprets the knob strings.
        """
        env = os.environ if environ is None else environ
        return cls(
            jobs=_parse_jobs(env.get("WIRA_JOBS", "")),
            cache_dir=_parse_path(env.get("WIRA_CACHE_DIR", "")) or default_cache_dir(),
            disk_cache=_parse_default_on(env.get("WIRA_DISK_CACHE", "1")),
            sanitize=_parse_opt_in(env.get("WIRA_SANITIZE", "")),
            trace=_parse_opt_in(env.get("WIRA_TRACE", "")),
            trace_dir=_parse_path(env.get("WIRA_TRACE_DIR", "")),
            batch=_parse_default_on(env.get("WIRA_BATCH", "1")),
            fast_link=_parse_default_on(env.get("WIRA_FAST_LINK", "1")),
        )

    def with_overrides(self, **changes: object) -> "Settings":
        """A copy with the given fields replaced (validated names)."""
        valid = {f.name for f in fields(self)}
        unknown = set(changes) - valid
        if unknown:
            raise TypeError(f"unknown Settings field(s): {sorted(unknown)}")
        return replace(self, **changes)  # type: ignore[arg-type]


def _parse_opt_in(raw: str) -> bool:
    """Historic opt-in parse: only an explicit truthy value enables."""
    return raw.strip().lower() in _TRUTHY


def _parse_default_on(raw: str) -> bool:
    """Historic default-on parse: only an explicit falsy value disables."""
    return raw.strip().lower() not in _FALSY


def _parse_jobs(raw: str) -> int:
    """Historic ``WIRA_JOBS`` parse: int, else warn and fall back to 1."""
    text = raw.strip()
    if not text:
        return 1
    try:
        return max(1, int(text))
    except ValueError:
        logger.warning("ignoring non-integer WIRA_JOBS=%r", text)
        return 1


def _parse_path(raw: str) -> Optional[Path]:
    text = raw.strip()
    return Path(text) if text else None


# ---------------------------------------------------------------------------
# Process-wide access.  ``configure`` pins an explicit Settings (CLIs do
# this once at startup after applying their flags); without a pin,
# ``current()`` reflects the live environment.

_CONFIGURED: Optional[Settings] = None


def current() -> Settings:
    """The active settings: the configured pin, else a fresh env parse."""
    if _CONFIGURED is not None:
        return _CONFIGURED
    return Settings.from_env()


def configure(settings: Optional[Settings]) -> Optional[Settings]:
    """Pin (or with ``None`` unpin) the process-wide settings."""
    global _CONFIGURED
    previous = _CONFIGURED
    _CONFIGURED = settings
    return previous


def configured() -> bool:
    """True when an explicit pin is installed."""
    return _CONFIGURED is not None


@contextmanager
def overridden(**changes: object) -> Iterator[Settings]:
    """Scoped settings override for tests and programmatic callers."""
    pinned = current().with_overrides(**changes)
    previous = configure(pinned)
    try:
        yield pinned
    finally:
        configure(previous)

"""Process-wide runtime configuration (the ``WIRA_*`` knobs).

See :mod:`repro.runtime.settings` — the single point where environment
variables become values.  Typical use::

    from repro.runtime import settings

    jobs = settings.current().jobs

    with settings.overridden(jobs=4, disk_cache=False):
        ...
"""

from repro.runtime.settings import (
    KNOWN_KNOBS,
    Settings,
    configure,
    configured,
    current,
    default_cache_dir,
    overridden,
)

__all__ = [
    "KNOWN_KNOBS",
    "Settings",
    "configure",
    "configured",
    "current",
    "default_cache_dir",
    "overridden",
]

"""Transport fault injection (adverse-input testing under load).

See :mod:`repro.faults.injector` for the model.  Typical use::

    from repro.faults import FaultKind, FaultPlan

    spec = SessionSpec(
        conditions, Scheme.WIRA,
        fault_plan=FaultPlan(FaultKind.COOKIE_CORRUPT), seed=7,
    )
    result = StreamingSession.from_spec(spec, origin, "stream").run()
    assert result.completed            # graceful degradation
    assert result.fault_summary        # the fault actually fired
"""

from repro.faults.injector import (
    HUGE_FF_SIZE,
    FaultInjector,
    FaultKind,
    FaultPlan,
    single_fault_plans,
)

__all__ = [
    "HUGE_FF_SIZE",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "single_fault_plans",
]

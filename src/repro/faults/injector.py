"""Seeded transport fault injector.

§IV-C's safety argument is that Wira *degrades gracefully*: a forged or
stale cookie, an unparsable FF_Size, or a hostile path must never make
Wira worse than the baseline.  The unit suite exercises each rejection
path in isolation; this module injects the same faults into *live*
sessions so the corner cases run under load, against the real handshake,
recovery and initialisation machinery.

A :class:`FaultPlan` is plain picklable data naming one fault and its
parameters; a :class:`FaultInjector` binds a plan to one session's event
loop and rng, and exposes the three hook shapes the session wires in:

* :meth:`FaultInjector.mutate_hqst` — corrupt/truncate the sealed
  cookie or mangle the HQST tag the client echoes in its CHLO,
  exercising the MAC-rejection and codec ``CookieError`` paths;
* :meth:`FaultInjector.wrap_send` — intercept datagrams entering the
  path: flip bits (the receiver models AEAD rejection and drops the
  datagram), or drop/delay the leading client→server datagrams so the
  handshake itself is lost or late;
* :attr:`FaultInjector.ff_size_override` — replace the parser's FF_Size
  with an adversarial value (0, 1 byte, multi-MB), exercising the
  initializer's floors and the ``max_initial_cwnd_bytes`` safety bound.

Every mutation draws from the injector's rng only, so a session seed
fully determines the fault realisation, and every action is counted in
:attr:`FaultInjector.counters` and emitted on the :mod:`repro.obs`
trace bus as a ``fault:injected`` event.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro import obs as _obs
from repro.simnet.engine import EventLoop
from repro.simnet.link import Datagram
from repro.simnet.schedule import PATH_TRACE_ID

SendHook = Callable[[Datagram], bool]

#: "multi-MB" adversarial FF_Size (a cookie/parse result no sane stream
#: produces; must be clamped by ``WiraConfig.max_initial_cwnd_bytes``).
HUGE_FF_SIZE = 8 * 1024 * 1024


class FaultKind(enum.Enum):
    """One injectable transport fault."""

    COOKIE_CORRUPT = "cookie_corrupt"  # bit-flip inside the sealed cookie blob
    COOKIE_TRUNCATE = "cookie_truncate"  # cut the HQST tag mid-sealed-frame
    HQST_GARBAGE = "hqst_garbage"  # invalid Bool byte in the HQST tag
    DATAGRAM_BITFLIP = "datagram_bitflip"  # corrupt a fraction of datagrams
    HANDSHAKE_DROP = "handshake_drop"  # lose the leading client datagrams
    HANDSHAKE_DELAY = "handshake_delay"  # delay the leading client datagrams
    FF_SIZE_ZERO = "ff_size_zero"  # parser "reports" FF_Size = 0
    FF_SIZE_TINY = "ff_size_tiny"  # parser "reports" FF_Size = 1 byte
    FF_SIZE_HUGE = "ff_size_huge"  # parser "reports" a multi-MB FF_Size


@dataclass(frozen=True)
class FaultPlan:
    """One fault plus its parameters; picklable and hashable."""

    kind: FaultKind
    #: Fraction of datagrams corrupted (``DATAGRAM_BITFLIP``).
    bitflip_rate: float = 0.02
    #: Leading client→server datagrams dropped (``HANDSHAKE_DROP``).
    handshake_drops: int = 1
    #: Leading client→server datagrams delayed (``HANDSHAKE_DELAY``).
    handshake_delay_count: int = 2
    #: Extra delay applied to each, seconds (``HANDSHAKE_DELAY``).
    handshake_delay: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 <= self.bitflip_rate <= 1.0:
            raise ValueError("bitflip_rate must be a probability")
        if self.handshake_drops < 0 or self.handshake_delay_count < 0:
            raise ValueError("handshake fault counts must be non-negative")
        if self.handshake_delay < 0.0:
            raise ValueError("handshake_delay must be non-negative")

    @property
    def ff_size_override(self) -> Optional[int]:
        """Adversarial FF_Size value, or ``None`` for non-FF faults."""
        if self.kind == FaultKind.FF_SIZE_ZERO:
            return 0
        if self.kind == FaultKind.FF_SIZE_TINY:
            return 1
        if self.kind == FaultKind.FF_SIZE_HUGE:
            return HUGE_FF_SIZE
        return None


def single_fault_plans() -> Dict[str, FaultPlan]:
    """One default-parameter plan per fault kind, keyed by kind value."""
    return {kind.value: FaultPlan(kind) for kind in FaultKind}


class FaultInjector:
    """Binds a :class:`FaultPlan` to one session's loop and randomness."""

    def __init__(self, plan: FaultPlan, loop: EventLoop, rng: random.Random) -> None:
        self.plan = plan
        self._loop = loop
        self._rng = rng
        #: Action → number of times it fired, for gate reports and tests.
        self.counters: Dict[str, int] = {}
        self._client_datagrams_seen = 0

    # ------------------------------------------------------------------

    def _note(self, action: str, **data: object) -> None:
        self.counters[action] = self.counters.get(action, 0) + 1
        if _obs.ACTIVE is not None:
            payload: Dict[str, object] = {"kind": self.plan.kind.value, "action": action}
            payload.update(data)
            _obs.ACTIVE.emit(self._loop.now, "fault:injected", PATH_TRACE_ID, payload)

    # ------------------------------------------------------------------
    # Cookie / HQST faults (mutate the CHLO tag the client echoes)

    def mutate_hqst(self, hqst: bytes) -> bytes:
        """Apply any cookie/HQST fault to the encoded tag value."""
        kind = self.plan.kind
        if kind == FaultKind.COOKIE_CORRUPT:
            # Flip one bit past the Bool/varint prefix, inside the sealed
            # region, so the server's MAC check must catch it.
            if len(hqst) <= 4:
                return hqst  # no cookie echoed — nothing to corrupt
            index = self._rng.randrange(4, len(hqst))
            bit = 1 << self._rng.randrange(8)
            mutated = bytearray(hqst)
            mutated[index] ^= bit
            self._note("hqst_corrupted", index=index)
            return bytes(mutated)
        if kind == FaultKind.COOKIE_TRUNCATE:
            if len(hqst) <= 4:
                return hqst
            cut = max(4, len(hqst) // 2)
            self._note("hqst_truncated", kept=cut)
            return hqst[:cut]
        if kind == FaultKind.HQST_GARBAGE:
            # An invalid Bool byte: strict decoding must reject it rather
            # than misread it as "unsupported".
            self._note("hqst_garbage")
            return bytes([0x7F]) + hqst[1:]
        return hqst

    # ------------------------------------------------------------------
    # Datagram-level faults

    def wrap_send(self, send: SendHook, direction: str) -> SendHook:
        """Wrap a path send hook; ``direction`` is ``to_client``/``to_server``."""
        kind = self.plan.kind
        if kind == FaultKind.DATAGRAM_BITFLIP:
            return self._bitflip_wrapper(send, direction)
        if direction == "to_server" and kind in (
            FaultKind.HANDSHAKE_DROP,
            FaultKind.HANDSHAKE_DELAY,
        ):
            return self._handshake_wrapper(send)
        return send

    def _bitflip_wrapper(self, send: SendHook, direction: str) -> SendHook:
        def sender(datagram: Datagram) -> bool:
            if self._rng.random() < self.plan.bitflip_rate and datagram.payload:
                index = self._rng.randrange(len(datagram.payload))
                bit = 1 << self._rng.randrange(8)
                mutated = bytearray(datagram.payload)
                mutated[index] ^= bit
                self._note("datagram_bitflipped", direction=direction, index=index)
                datagram = Datagram(
                    bytes(mutated), size=datagram.size, corrupted=True
                )
            return send(datagram)

        return sender

    def _handshake_wrapper(self, send: SendHook) -> SendHook:
        drop = self.plan.kind == FaultKind.HANDSHAKE_DROP

        def sender(datagram: Datagram) -> bool:
            self._client_datagrams_seen += 1
            seen = self._client_datagrams_seen
            if drop:
                if seen <= self.plan.handshake_drops:
                    self._note("handshake_dropped", n=seen)
                    return False
                return send(datagram)
            if seen <= self.plan.handshake_delay_count:
                self._note("handshake_delayed", n=seen, delay=self.plan.handshake_delay)
                self._loop.post_later(self.plan.handshake_delay, send, datagram)
                return True
            return send(datagram)

        return sender

    # ------------------------------------------------------------------
    # Frame-perception faults

    @property
    def ff_size_override(self) -> Optional[int]:
        """Adversarial FF_Size for the server to adopt, if any."""
        return self.plan.ff_size_override

    def note_ff_size_override(self, value: int) -> None:
        """Called by the server when it adopts the adversarial value."""
        self._note("ff_size_overridden", value=value)

#!/usr/bin/env python3
"""Miniature CDN deployment: the Fig 11 evaluation at example scale.

Replays a small deployment — OD pairs with session chains, QoS drift,
cookie persistence, 0-RTT/1-RTT mix — under every Table I scheme and
prints the paper-style FFCT summary.  The full-size version of this
experiment is ``benchmarks/test_bench_fig11.py``.

Usage::

    python examples/live_cdn_deployment.py [n_od_pairs]
"""

import sys

from repro.core.initializer import Scheme
from repro.experiments.common import EVAL_SCHEMES, run_deployment
from repro.metrics.report import Table, format_ms, format_pct
from repro.metrics.stats import mean, percentile
from repro.workload.population import DeploymentConfig


def main() -> None:
    n_od_pairs = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    print(f"Replaying a {n_od_pairs}-OD-pair deployment under "
          f"{len(EVAL_SCHEMES)} schemes (a minute or so)...")

    config = DeploymentConfig(n_od_pairs=n_od_pairs, seed=7)
    records = run_deployment(config, EVAL_SCHEMES, use_cache=False)

    table = Table(
        "FFCT by scheme (paper Fig 11: Wira -10.6% avg, -16.7% p90)",
        ["scheme", "sessions", "avg FFCT", "gain", "p90 FFCT", "p90 gain", "avg FFLR"],
    )
    baseline_avg = baseline_p90 = None
    for scheme in (Scheme.BASELINE, Scheme.WIRA_FF, Scheme.WIRA_HX, Scheme.WIRA):
        outcomes = records[scheme]
        ffcts = [o.result.ffct for o in outcomes if o.result.ffct is not None]
        fflrs = [o.result.fflr for o in outcomes if o.result.fflr is not None]
        avg, p90 = mean(ffcts), percentile(ffcts, 90)
        if baseline_avg is None:
            baseline_avg, baseline_p90 = avg, p90
        table.add_row(
            scheme.display_name,
            len(ffcts),
            format_ms(avg),
            format_pct((baseline_avg - avg) / baseline_avg, signed=True),
            format_ms(p90),
            format_pct((baseline_p90 - p90) / baseline_p90, signed=True),
            format_pct(mean(fflrs)),
        )
    table.print()

    wira = records[Scheme.WIRA]
    with_cookie = sum(1 for o in wira if o.result.used_cookie)
    provisional = sum(
        1 for o in wira if o.result.initial_params and o.result.initial_params.provisional
    )
    print(f"\nWira sessions using a valid transport cookie: "
          f"{with_cookie}/{len(wira)} ({with_cookie / len(wira):.0%})")
    print(f"Sessions that fell back to corner cases: {len(wira) - with_cookie}"
          f" (no/stale cookie), {provisional} provisional (late FF_Size)")


if __name__ == "__main__":
    main()

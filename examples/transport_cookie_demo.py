#!/usr/bin/env python3
"""Transport Cookie demo: the §IV-B stateless synchronisation loop.

Walks the full cookie lifecycle across two sessions of one OD pair:

1. the server measures MinRTT/MaxBW, seals them with its key, and pushes
   the Hx_QoS frame (type 0x1f) to the client;
2. the client stores the opaque blob (it cannot read it) and echoes it
   in the next CHLO's HQST tag;
3. the stateless server authenticates the echo and initialises the new
   connection's window and pacing rate from the historical QoS;

then demonstrates the §VII security properties: tampered and forged
cookies are rejected, and cookies older than Δ go stale (corner case 2).

Usage::

    python examples/transport_cookie_demo.py
"""

from repro.core.config import WiraConfig
from repro.core.schemes import InitContext, make_policy
from repro.core.transport_cookie import (
    ClientCookieStore,
    HxQos,
    ServerCookieManager,
    decode_hqst,
    encode_hqst,
)

KEY = b"production-server-secret-32bytes"


def main() -> None:
    config = WiraConfig()
    server = ServerCookieManager(KEY, staleness_delta=config.staleness_delta)
    client_store = ClientCookieStore()

    # --- Session 1: the server measures and synchronises -----------------
    measured = HxQos(min_rtt=0.048, max_bw_bps=9_200_000.0, timestamp=1_000.0)
    frame = server.build_frame(measured)
    print(f"[server] measured MinRTT={measured.min_rtt * 1000:.0f}ms, "
          f"MaxBW={measured.max_bw_bps / 1e6:.1f}Mbps -> Hx_QoS frame "
          f"({len(frame.encode())} bytes on the wire, type 0x1f)")

    client_store.on_hx_qos_frame("cdn-edge-7", frame, now=1_000.5)
    sealed, received_at = client_store.get("cdn-edge-7")
    print(f"[client] stored sealed cookie ({len(sealed)} bytes); "
          f"plaintext visible to client: {b'9200000' in sealed or b'48' in sealed}")

    # --- Session 2: the client echoes, the server initialises ------------
    hqst_tag = encode_hqst(True, int(received_at * 1000), sealed)
    print(f"[client] next CHLO carries HQST tag ({len(hqst_tag)} bytes)")

    supported, _ts, echoed = decode_hqst(hqst_tag)
    hx = server.open_echoed(echoed, now=1_300.0)  # 5 minutes later
    print(f"[server] cookie authenticated: MinRTT={hx.min_rtt * 1000:.0f}ms, "
          f"MaxBW={hx.max_bw_bps / 1e6:.1f}Mbps (BDP={hx.bdp_bytes:,}B)")

    wira = make_policy("wira")
    params = wira.initial_params(InitContext(config=config, ff_size=66_000, hx_qos=hx))
    print(f"[server] Wira init: cwnd={params.cwnd_bytes:,}B "
          f"(min{{FF, BDP}}), pacing={params.pacing_bps / 1e6:.1f}Mbps (=MaxBW)\n")

    # --- Security properties (§VII) --------------------------------------
    tampered = bytearray(sealed)
    tampered[16] ^= 0xFF
    assert server.open_echoed(bytes(tampered), now=1_300.0) is None
    print("[server] tampered cookie rejected (MAC failure)")

    forged = HxQos(min_rtt=0.001, max_bw_bps=1e9, timestamp=1_299.0).encode()
    assert server.open_echoed(b"\x00" * 12 + forged + b"\x00" * 16, now=1_300.0) is None
    print("[server] forged 'favourable' cookie rejected — clients cannot "
          "fabricate Hx_QoS to grab bandwidth")

    assert server.open_echoed(echoed, now=1_000.0 + 3_601.0) is None
    print(f"[server] cookie older than Δ={config.staleness_delta / 60:.0f}min "
          "rejected as stale -> corner case 2 (FF-based fallback)")

    fallback = wira.initial_params(InitContext(config=config, ff_size=66_000, hx_qos=None))
    print(f"[server] fallback init: cwnd={fallback.cwnd_bytes:,}B (FF_Size), "
          f"pacing={fallback.pacing_bps / 1e6:.1f}Mbps (FF/init_RTT_exp)")


if __name__ == "__main__":
    main()

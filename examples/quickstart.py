#!/usr/bin/env python3
"""Quickstart: one live-streaming session per scheme on the paper's testbed.

Runs a client joining a live stream through the Wira proxy over a
simulated 8 Mbps / 50 ms / 3 %-loss path (§II footnote 2) and prints the
first-frame completion time under each initialisation scheme of Table I.

Usage::

    python examples/quickstart.py
"""

from repro.cdn.origin import Origin
from repro.cdn.session import SessionSpec, StreamingSession
from repro.core.initializer import Scheme
from repro.core.transport_cookie import ClientCookieStore
from repro.media.source import StreamProfile
from repro.metrics.report import Table, format_ms, format_pct
from repro.simnet.path import NetworkConditions


def main() -> None:
    conditions = NetworkConditions(
        bandwidth_bps=8_000_000.0,  # 8 Mbps bottleneck
        rtt=0.050,  # 50 ms round trip
        loss_rate=0.03,  # 3 % random loss
        buffer_bytes=25_000,  # 25 kB drop-tail buffer
    )

    origin = Origin()
    origin.add_stream(
        "demo",
        StreamProfile(
            first_frame_target_bytes=66_000,
            complexity_sigma=0.03,  # keep the FF close to 66 kB for the demo
            size_jitter=0.03,
            seed=7,
        ),
    )

    table = Table(
        "Quickstart — FFCT on the paper's testbed (66 kB first frame)",
        ["scheme", "FFCT", "vs baseline", "first-frame loss", "init cwnd", "init pacing"],
    )
    baseline_ffct = None
    for scheme in (Scheme.BASELINE, Scheme.WIRA_FF, Scheme.WIRA_HX, Scheme.WIRA):
        # Each scheme gets a two-session OD pair: the first session
        # charges the client's transport-cookie store, the second is
        # measured (that is when Hx_QoS is available).
        store = ClientCookieStore()
        warmup_spec = SessionSpec(conditions, scheme, seed=1, target_video_frames=20)
        StreamingSession.from_spec(warmup_spec, origin, "demo", cookie_store=store).run()
        measured_spec = SessionSpec(conditions, scheme, seed=2, epoch=300.0)
        result = StreamingSession.from_spec(
            measured_spec, origin, "demo", cookie_store=store
        ).run()

        if baseline_ffct is None:
            baseline_ffct = result.ffct
        gain = (baseline_ffct - result.ffct) / baseline_ffct
        params = result.initial_params
        table.add_row(
            scheme.display_name,
            format_ms(result.ffct),
            format_pct(gain, signed=True),
            format_pct(result.fflr),
            f"{params.cwnd_bytes / 1000:.1f}kB",
            f"{params.pacing_bps / 1e6:.2f}Mbps",
        )
    table.print()
    print(
        "\nWira initialises the window from the parsed first-frame size and"
        "\nthe pacing rate from the previous session's cookie — both signals"
        "\nare visible in the last two columns."
    )


if __name__ == "__main__":
    main()

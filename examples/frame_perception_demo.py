#!/usr/bin/env python3
"""Frame Perception demo: Algorithm 1 over FLV, RTMP and MPEG-TS bytes.

Builds the paper's §IV-A running example — script data, audio, an I
frame, a P frame and three B frames — muxes it into each supported
container, and runs the cross-layer parser to obtain FF_Size, showing

* protocol dispatch (``PtlType``),
* the exact byte breakdown of FF_Size (header + script + audio + I),
* the effect of the playback threshold Θ_VF (§VII),
* incremental parsing (bytes fed as the origin delivers them).

Usage::

    python examples/frame_perception_demo.py
"""

from repro.core.frame_perception import FrameParser
from repro.media import flv, hls, rtmp
from repro.media.frames import MediaFrame, MediaFrameType
from repro.metrics.report import Table


def example_frames():
    """§IV-A: S_script, S_audio, S_I, S_P, S_B1, S_B2, S_B3."""
    return [
        MediaFrame.synthetic(MediaFrameType.SCRIPT, 0, 420),
        MediaFrame.synthetic(MediaFrameType.AUDIO, 0, 372),
        MediaFrame.synthetic(MediaFrameType.VIDEO_I, 0, 52_000),
        MediaFrame.synthetic(MediaFrameType.VIDEO_P, 40, 7_400),
        MediaFrame.synthetic(MediaFrameType.VIDEO_B, 80, 2_600),
        MediaFrame.synthetic(MediaFrameType.VIDEO_B, 120, 2_500),
        MediaFrame.synthetic(MediaFrameType.VIDEO_B, 160, 2_700),
    ]


def main() -> None:
    frames = example_frames()

    table = Table(
        "Frame Perception across containers (Θ_VF = 1)",
        ["container", "PtlType", "FF_Size", "stream bytes", "container overhead"],
    )
    for name, mux in (("HTTP-FLV", flv.mux), ("RTMP", rtmp.mux), ("HLS/MPEG-TS", hls.mux)):
        blob = mux(frames)
        parser = FrameParser(video_frame_threshold=1)
        ff_size = parser.feed(blob)
        media_bytes = sum(f.size for f in frames[:3])  # through the I frame
        table.add_row(
            name,
            parser.protocol.value,
            f"{ff_size:,} B",
            f"{media_bytes:,} B",
            f"{ff_size - media_bytes:,} B",
        )
    table.print()

    breakdown = FrameParser()
    blob = flv.mux(frames)
    breakdown.feed(blob)
    parts = Table("FF_Size breakdown (FLV)", ["component", "bytes"])
    for component, size in breakdown.breakdown().items():
        parts.add_row(component, f"{size:,}")
    parts.print()

    theta = Table(
        "Playback conditions: Θ_VF sweep (§VII)",
        ["Θ_VF", "first frame ends at", "FF_Size"],
    )
    labels = {1: "I frame", 2: "P frame", 3: "1st B frame", 4: "2nd B frame"}
    for threshold in (1, 2, 3, 4):
        parser = FrameParser(video_frame_threshold=threshold)
        ff = parser.feed(blob)
        theta.add_row(threshold, labels[threshold], f"{ff:,} B")
    theta.print()

    # Incremental feeding: the proxy parses as the origin delivers.
    parser = FrameParser()
    chunk = 1_500
    for offset in range(0, len(blob), chunk):
        ff = parser.feed(blob[offset : offset + chunk])
        if ff is not None:
            print(
                f"\nIncremental parse: FF_Size={ff:,}B known after "
                f"{offset + chunk:,} of {len(blob):,} bytes were delivered — "
                "the window can be initialised before the frame finishes arriving."
            )
            break


if __name__ == "__main__":
    main()

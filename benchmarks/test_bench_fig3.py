"""Fig 3 — QoS dispersion within user groups (paper: avg CV 36.4%
MinRTT / 51.6% MaxBW; ~50% of MinRTT CVs > 20%, only 12.8% of MaxBW
CVs < 20%)."""

from repro.experiments import fig3
from repro.metrics.report import Table, format_pct


def test_bench_fig3_user_group_dispersion(once):
    result = once(fig3.run, 250, 40)

    table = Table(
        "Fig 3 — within-UG coefficient of variation",
        ["metric", "paper", "measured"],
    )
    table.add_row("avg MinRTT CV", "36.4%", format_pct(result.avg_rtt_cv))
    table.add_row("avg MaxBW CV", "51.6%", format_pct(result.avg_bw_cv))
    table.add_row("P(MinRTT CV > 20%)", "~50%", format_pct(result.frac_rtt_cv_above_20pct))
    table.add_row("P(MaxBW CV < 20%)", "12.8%", format_pct(result.frac_bw_cv_below_20pct))
    table.print()

    assert 0.28 < result.avg_rtt_cv < 0.45
    assert 0.40 < result.avg_bw_cv < 0.62
    assert result.frac_rtt_cv_above_20pct > 0.5
    assert result.frac_bw_cv_below_20pct < 0.25
    # MaxBW is the more dispersed metric, as in the paper.
    assert result.avg_bw_cv > result.avg_rtt_cv

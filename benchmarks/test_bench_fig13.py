"""Fig 13 — FFCT benefits bucketed by FF_Size / MinRTT / MaxBW /
retransmission ratio (paper: gains grow with FF_Size — 4.1% at (30,50]
to 20.2% at (80,150]; degrade above 100ms MinRTT; peak in the
(10,20]Mbps MaxBW band)."""

from repro.core.initializer import Scheme
from repro.experiments import fig13
from repro.metrics.report import Table, format_ms, format_pct


def _print_dimension(bucketed, title):
    table = Table(title, ["bucket", "n(base)", "Baseline", "Wira(FF)", "Wira(Hx)", "Wira", "Wira gain"])
    for bucket in bucketed.buckets():
        row = [bucket, len(bucketed.table[bucket][Scheme.BASELINE])]
        for scheme in (Scheme.BASELINE, Scheme.WIRA_FF, Scheme.WIRA_HX, Scheme.WIRA):
            row.append(format_ms(bucketed.mean_ffct(bucket, scheme)))
        row.append(format_pct(bucketed.improvement(bucket, Scheme.WIRA), signed=True))
        table.add_row(*row)
    table.print()


def test_bench_fig13_conditional_benefits(once, print_phase_table):
    result = once(fig13.run)
    print_phase_table("Fig 13")

    _print_dimension(result.by_ff, "Fig 13(a) — by FF_Size (KB); paper: gains grow with FF")
    _print_dimension(result.by_rtt, "Fig 13(b) — by MinRTT (ms); paper: degrade beyond 100ms")
    _print_dimension(result.by_bw, "Fig 13(c) — by MaxBW (Mbps); paper: peak at (10,20]")
    _print_dimension(result.by_retx, "Fig 13(d) — by retransmission ratio (%)")

    # (a) The largest first frames benefit more than mid-sized ones
    # (paper: 4.1% at (30,50] rising to 20.2% at (80,150]).
    mid = result.by_ff.improvement("(30,50]", Scheme.WIRA)
    large = result.by_ff.improvement("(80,150]", Scheme.WIRA)
    if mid is not None and large is not None:
        assert large > mid - 0.02
    # (b) Gains exist below 100ms RTT.
    mid_rtt = result.by_rtt.improvement("(30,60]", Scheme.WIRA)
    assert mid_rtt is not None and mid_rtt > 0.0
    # (c) The mid-bandwidth band gains (baseline's fixed pacing is most
    # wrong when the path is much faster than its assumption).
    mid_bw = result.by_bw.improvement("(10,20]", Scheme.WIRA)
    assert mid_bw is not None and mid_bw > 0.0

"""Fig 2 — FFCT vs init_cwnd and init_pacing on the testbed
(8 Mbps / 3% loss / 50 ms RTT / 25 KB buffer, 66 KB first frame)."""

from repro.experiments import fig2
from repro.metrics.report import Table, format_ms, format_pct


def test_bench_fig2_window_and_rate_sweeps(once):
    result = once(fig2.run, 20)

    table_a = Table(
        "Fig 2(a) — FFCT vs init_cwnd (packets); paper: 45 best, 4/10 slow, 80/100 lossy",
        ["init_cwnd", "FFCT", "first-frame loss"],
    )
    for point in result.cwnd_sweep:
        table_a.add_row(int(point.parameter), format_ms(point.ffct), format_pct(point.loss_rate))
    table_a.print()

    table_b = Table(
        "Fig 2(b) — FFCT vs init_pacing (Mbps); paper: 8Mbps (=MaxBW) best, 0.8 slow, 16/40 lossy",
        ["init_pacing", "FFCT", "first-frame loss"],
    )
    for point in result.pacing_sweep:
        table_b.add_row(point.parameter, format_ms(point.ffct), format_pct(point.loss_rate))
    table_b.print()

    by_cwnd = {int(p.parameter): p for p in result.cwnd_sweep}
    # Matching the window to FF_Size (45 packets ~= 66KB) beats both
    # extremes; small windows pay RTTs, large ones pay losses.
    assert by_cwnd[45].ffct < by_cwnd[4].ffct
    assert by_cwnd[45].ffct < by_cwnd[10].ffct
    assert by_cwnd[45].ffct <= min(by_cwnd[80].ffct, by_cwnd[100].ffct) * 1.10
    assert by_cwnd[100].loss_rate > by_cwnd[45].loss_rate

    by_pacing = {p.parameter: p for p in result.pacing_sweep}
    # Pacing at the bottleneck rate wins; undershoot dribbles, heavy
    # overshoot loses packets.
    assert by_pacing[8.0].ffct < by_pacing[0.8].ffct
    assert by_pacing[8.0].ffct < by_pacing[40.0].ffct
    assert by_pacing[40.0].loss_rate > by_pacing[8.0].loss_rate
    # Dribble is the worst configuration (paper: 302ms vs 157ms ~ 1.9x;
    # BBR's model takes over after the first RTT, bounding the damage).
    assert by_pacing[0.8].ffct > 1.5 * by_pacing[8.0].ffct

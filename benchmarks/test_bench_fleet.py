"""Fleet-engine benchmarks: throughput, sharding, and memory bounds.

Measures the campaign machinery, not the paper's numbers: sessions/sec
for the serial and sharded paths, the serial==sharded report-hash check,
peak RSS — the engine's promise is bounded memory at any campaign
size, so the artifact records the high-water mark alongside throughput —
and the wall-clock cost of the durability/observability taps
(checkpointing, telemetry snapshots).  Results accumulate into
``BENCH_fleet.json`` at the repository root so CI can archive them
run-over-run; ``wira-perf`` folds the campaign throughput and
checkpoint-overhead fraction into the regression ratchet.

Knobs (for CI smoke runs on small machines):

``WIRA_BENCH_FLEET_OD_PAIRS``
    Campaign size in OD chains (default 60; every chain replays under
    both benched schemes, so sessions ≈ 2 × chains × ~3.5).
``WIRA_BENCH_JOBS``
    Worker count for the sharded leg (default 4).
"""

import json
import os
import resource
import time
from pathlib import Path

from repro.fleet import FleetConfig, build_report, report_hash, run_campaign
from repro.workload.population import DeploymentConfig

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"


def _record(section, payload):
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _bench_od_pairs():
    return int(os.environ.get("WIRA_BENCH_FLEET_OD_PAIRS", "60"))


def _bench_jobs():
    return int(os.environ.get("WIRA_BENCH_JOBS", "4"))


def _peak_rss_bytes():
    """High-water RSS of this process (kB on Linux, bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if peak > 1 << 30 else peak * 1024


def _bench_config():
    return FleetConfig(
        population=DeploymentConfig(n_od_pairs=_bench_od_pairs(), seed=42),
        schemes=("baseline", "wira"),
        chunk_chains=10,
    )


def test_bench_fleet_campaign(once, capsys):
    """Serial and sharded campaign legs over the same population."""
    config = _bench_config()

    def campaign():
        timings = {}

        start = time.perf_counter()
        serial = run_campaign(config, jobs=1)
        timings["serial_s"] = time.perf_counter() - start

        jobs = _bench_jobs()
        start = time.perf_counter()
        sharded = run_campaign(config, jobs=jobs)
        timings["sharded_s"] = time.perf_counter() - start

        key = config.key()
        serial_hash = report_hash(build_report(serial, key))
        sharded_hash = report_hash(build_report(sharded, key))
        return serial, sharded, serial_hash, sharded_hash, timings, jobs

    serial, sharded, serial_hash, sharded_hash, timings, jobs = once(campaign)

    # The determinism contract, enforced on every benchmark run.
    assert serial_hash == sharded_hash

    sessions = serial.total_sessions
    payload = {
        "od_pairs": config.population.n_od_pairs,
        "schemes": list(config.schemes),
        "sessions": sessions,
        "serial_seconds": round(timings["serial_s"], 3),
        "serial_sessions_per_sec": round(sessions / timings["serial_s"], 1),
        "sharded_jobs": jobs,
        "sharded_seconds": round(timings["sharded_s"], 3),
        "sharded_sessions_per_sec": round(sessions / timings["sharded_s"], 1),
        "speedup": round(timings["serial_s"] / timings["sharded_s"], 2),
        "report_hash": serial_hash,
        "peak_rss_mb": round(_peak_rss_bytes() / 1e6, 1),
    }
    _record("campaign", payload)
    with capsys.disabled():
        print(
            f"\nfleet campaign: {sessions} sessions — "
            f"serial {payload['serial_sessions_per_sec']}/s, "
            f"sharded x{jobs} {payload['sharded_sessions_per_sec']}/s "
            f"(speedup {payload['speedup']}), "
            f"peak RSS {payload['peak_rss_mb']} MB, "
            f"hash {serial_hash[:12]}"
        )


def test_bench_fleet_checkpoint_overhead(once, tmp_path, capsys):
    """Checkpointing every chunk vs none: the durability tax."""
    base = _bench_config().with_(
        population=DeploymentConfig(n_od_pairs=max(10, _bench_od_pairs() // 3), seed=42),
        checkpoint_every=1,
    )

    def legs():
        start = time.perf_counter()
        run_campaign(base, jobs=1)
        bare = time.perf_counter() - start

        start = time.perf_counter()
        run_campaign(base, checkpoint_path=tmp_path / "cp.json", jobs=1)
        checked = time.perf_counter() - start
        return bare, checked

    bare, checked = once(legs)
    overhead = (checked - bare) / bare if bare > 0 else 0.0
    payload = {
        "od_pairs": base.population.n_od_pairs,
        "bare_seconds": round(bare, 3),
        "checkpointed_seconds": round(checked, 3),
        "overhead_frac": round(overhead, 4),
    }
    _record("checkpoint_overhead", payload)
    with capsys.disabled():
        print(
            f"\nfleet checkpoint overhead: {payload['overhead_frac']:+.1%} "
            f"({bare:.2f}s -> {checked:.2f}s, every chunk)"
        )


def test_bench_fleet_telemetry_overhead(once, tmp_path, capsys):
    """Snapshot tap on vs off: the observability tax.

    The acceptance bar for the telemetry tap is ≤2% wall-clock overhead
    at production scale; at smoke scale the write cost is amortized over
    far fewer sessions, so the artifact records the measured fraction
    for the perf trajectory rather than asserting a threshold here.
    """
    base = _bench_config().with_(
        population=DeploymentConfig(n_od_pairs=max(10, _bench_od_pairs() // 3), seed=42),
        checkpoint_every=1,
    )

    def legs():
        start = time.perf_counter()
        run_campaign(base, checkpoint_path=tmp_path / "a.json", jobs=1)
        plain = time.perf_counter() - start

        start = time.perf_counter()
        run_campaign(
            base,
            checkpoint_path=tmp_path / "b.json",
            jobs=1,
            telemetry_dir=tmp_path / "b.json.telemetry",
        )
        tapped = time.perf_counter() - start
        return plain, tapped

    plain, tapped = once(legs)
    overhead = (tapped - plain) / plain if plain > 0 else 0.0
    payload = {
        "od_pairs": base.population.n_od_pairs,
        "plain_seconds": round(plain, 3),
        "telemetry_seconds": round(tapped, 3),
        "overhead_frac": round(overhead, 4),
    }
    _record("telemetry_overhead", payload)
    with capsys.disabled():
        print(
            f"\nfleet telemetry overhead: {payload['overhead_frac']:+.1%} "
            f"({plain:.2f}s -> {tapped:.2f}s, snapshot per chunk)"
        )

"""Fig 1 — first-frame size diversity (paper: mean 43.1 KB, p30<30 KB,
p80>60 KB inter-stream; 45–130 KB intra-stream)."""

from repro.experiments import fig1
from repro.metrics.report import Table


def test_bench_fig1_first_frame_sizes(once):
    result = once(fig1.run, 1_000, 40)

    table = Table(
        "Fig 1(a) — inter-stream FF_Size (paper: mean 43.1KB, 30% < 30KB, 20% > 60KB)",
        ["metric", "paper", "measured"],
    )
    table.add_row("mean FF_Size", "43.1KB", f"{result.mean_kb:.1f}KB")
    table.add_row("P(FF < 30KB)", "~30%", f"{result.frac_below_30kb * 100:.1f}%")
    table.add_row("P(FF > 60KB)", "~20%", f"{result.frac_above_60kb * 100:.1f}%")
    table.print()

    intra = Table(
        "Fig 1(b) — intra-stream FF_Size every 5s (paper example: 45-130KB)",
        ["metric", "measured"],
    )
    intra.add_row("min", f"{result.intra_min_kb:.1f}KB")
    intra.add_row("max", f"{result.intra_max_kb:.1f}KB")
    intra.add_row("max/min ratio", f"{result.intra_max_kb / result.intra_min_kb:.2f}x")
    intra.print()

    # Shape assertions: the three published statistics hold.
    assert 38 < result.mean_kb < 49
    assert 0.24 < result.frac_below_30kb < 0.37
    assert 0.14 < result.frac_above_60kb < 0.27
    # Intra-stream variation is material (paper's example spans ~2.9x).
    assert result.intra_max_kb / result.intra_min_kb > 1.4

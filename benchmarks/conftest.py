"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures and prints
its rows (run with ``-s`` to see them inline; without it the tables
appear in captured output on failure).  The heavyweight deployment
replay behind Figs 11–15 runs once and is shared through the experiment
cache, so ordering within a session does not matter.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (results are what matter;
    these are end-to-end experiment regenerations, not microbenchmarks)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner

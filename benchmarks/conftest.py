"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures and prints
its rows (run with ``-s`` to see them inline; without it the tables
appear in captured output on failure).  The heavyweight deployment
replay behind Figs 11–15 runs once and is shared through the experiment
cache, so ordering within a session does not matter.
"""

import pytest


@pytest.fixture(scope="session", autouse=True)
def shared_replay_pool():
    """Share one replay worker pool across the whole benchmark session.

    ``repro.experiments.runner`` keeps a process-global
    ``ProcessPoolExecutor`` keyed by the resolved ``WIRA_JOBS`` value, so
    every parallel figure replay in this session reuses the same warm
    workers instead of paying a pool spawn per call.  This fixture only
    pins the teardown to pytest's session end (the atexit hook would
    fire anyway, just later).
    """
    yield
    from repro.experiments.runner import shutdown_pool

    shutdown_pool()


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (results are what matter;
    these are end-to-end experiment regenerations, not microbenchmarks)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


@pytest.fixture
def print_phase_table():
    """Print the headline replay's FFCT phase breakdown, if traced.

    Phase breakdowns exist only when the replay ran under an active
    trace bus (``WIRA_TRACE=1``); otherwise this prints a one-line hint.
    The records come from the shared experiment cache, so this never
    triggers a second replay.
    """

    def _print(figure_title):
        from repro.experiments.common import EVAL_SCHEMES, HEADLINE_CONFIG
        from repro.experiments.runner import run_deployment
        from repro.obs.timeline import deployment_phase_table, mean_breakdown, render_timeline

        records = run_deployment(HEADLINE_CONFIG, EVAL_SCHEMES)
        table = deployment_phase_table(
            records, title=f"{figure_title} — FFCT phase breakdown (mean per session)"
        )
        if table is None:
            print(f"{figure_title}: no phase breakdowns (run with WIRA_TRACE=1 to get them)")
            return
        table.print()
        by_scheme = {
            scheme.display_name: mean_breakdown(
                o.result.phase_breakdown for o in outcomes
            )
            for scheme, outcomes in records.items()
        }
        print(render_timeline(by_scheme))

    return _print

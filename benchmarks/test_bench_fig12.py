"""Fig 12 — FFCT benefits for 0-RTT vs 1-RTT streams (paper: 0-RTT −9.5%
avg / −16.6% p90; 1-RTT −21.3% avg / −32.5% p90; 0-RTT ≈ 90% of
streams)."""

from repro.core.initializer import Scheme
from repro.experiments import fig12
from repro.metrics.report import Table, format_ms, format_pct
from repro.quic.connection import HandshakeMode


def test_bench_fig12_zero_vs_one_rtt(once, print_phase_table):
    result = once(fig12.run)
    print_phase_table("Fig 12")

    for mode, paper_note in (
        (HandshakeMode.ZERO_RTT, "paper: base 169.0ms, Wira 152.9ms (-9.5%)"),
        (HandshakeMode.ONE_RTT, "paper: base 84.4ms, Wira 66.5ms (-21.3%)"),
    ):
        table = Table(
            f"Fig 12 — FFCT of {mode.value} streams ({paper_note})",
            ["scheme", "n", "avg", "avg gain", "p90", "p90 gain"],
        )
        for scheme in (Scheme.BASELINE, Scheme.WIRA_FF, Scheme.WIRA_HX, Scheme.WIRA):
            s = result.get(mode, scheme)
            table.add_row(
                scheme.display_name,
                len(s.samples),
                format_ms(s.avg),
                format_pct(result.improvement(mode, scheme), signed=True),
                format_ms(s.p(90)),
                format_pct(result.improvement(mode, scheme, 90), signed=True),
            )
        table.print()

    # ~90% of streams take the 0-RTT path (§VI measurement).
    assert 0.85 < result.zero_rtt_fraction() < 0.95
    # The dominant 0-RTT population benefits from full Wira.
    assert result.improvement(HandshakeMode.ZERO_RTT, Scheme.WIRA) > 0.0
    # The 1-RTT subset is ~10% of sessions and correspondingly noisy
    # (the paper has millions of samples per bucket); require only that
    # Wira does not *hurt* it materially.
    assert result.improvement(HandshakeMode.ONE_RTT, Scheme.WIRA) > -0.05
    assert result.improvement(HandshakeMode.ONE_RTT, Scheme.WIRA, 90) > -0.05

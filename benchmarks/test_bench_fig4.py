"""Fig 4 — QoS stability within the same OD pair (paper: avg MinRTT CV
9.9/10.2/10.5/11.2% at (0,5]/(0,10]/(0,30]/(0,60] min; MaxBW p50 CV
>22.6%; both far more stable than UG-level estimates)."""

from repro.experiments import fig4
from repro.experiments.fig4 import INTERVALS_MINUTES
from repro.metrics.report import Table, format_pct

PAPER_RTT_CVS = {5.0: 0.099, 10.0: 0.102, 30.0: 0.105, 60.0: 0.112}


def test_bench_fig4_od_pair_stability(once):
    result = once(fig4.run, 200, 16)

    table = Table(
        "Fig 4 — within-OD-pair CV vs revisit interval",
        ["interval", "paper MinRTT CV", "measured MinRTT CV", "measured MaxBW CV", "measured MaxBW p50"],
    )
    for interval in INTERVALS_MINUTES:
        d = result.by_interval[interval]
        table.add_row(
            f"(0,{interval:g}]min",
            format_pct(PAPER_RTT_CVS[interval]),
            format_pct(d.avg_rtt_cv),
            format_pct(d.avg_bw_cv),
            format_pct(d.p50_bw_cv),
        )
    table.print()

    five = result.by_interval[5.0]
    sixty = result.by_interval[60.0]
    # (i) MinRTT CV ~10%, growing slightly with the interval.
    assert 0.07 < five.avg_rtt_cv < 0.13
    assert five.avg_rtt_cv < sixty.avg_rtt_cv < five.avg_rtt_cv * 1.35
    # (ii) the bulk of OD pairs stay tightly stable.
    assert five.p80_rtt_cv < 0.18
    # (iii) MaxBW is noisier: median CV above ~20%.
    assert five.p50_bw_cv > 0.18
    # (iv) both far below the UG-level dispersion (36.4% / 51.6%).
    assert five.avg_rtt_cv < 0.364 / 2
    assert five.avg_bw_cv < 0.516 * 0.75

"""§VI preamble — A/B test of init_cwnd=10 vs the experiential baseline
(paper: 201.0ms avg / 476.5ms p90 vs 158.9ms / 409.6ms)."""

from repro.core.initializer import Scheme
from repro.experiments import baseline_ab
from repro.metrics.report import Table, format_ms


def test_bench_baseline_ab(once):
    result = once(baseline_ab.run)

    table = Table(
        "Baseline A/B — static init_cwnd=10 vs experiential configuration",
        ["scheme", "avg FFCT", "p90 FFCT"],
    )
    for scheme in (Scheme.STATIC_10, Scheme.BASELINE):
        table.add_row(
            scheme.display_name,
            format_ms(result.avg(scheme)),
            format_ms(result.p90(scheme)),
        )
    table.print()

    # The experiential baseline clearly beats Google's static 10-packet
    # window — which is why the paper compares Wira against the former.
    assert result.avg(Scheme.BASELINE) < result.avg(Scheme.STATIC_10)
    assert result.p90(Scheme.BASELINE) < result.p90(Scheme.STATIC_10)

"""Ablations beyond the paper's evaluation (DESIGN.md extensions).

* **Θ_VF sweep** — the playback-condition knob of §VII: how FFCT and the
  effective first-frame size move as players demand more video frames
  before first paint.
* **Staleness Δ sweep** — corner case 2's threshold: how much cookie
  history helps as it ages.
* **Congestion-controller substrate** — the paper deploys on BBRv1; the
  initialisation hooks are controller-agnostic, so we compare the same
  schemes on CUBIC.
"""

from repro.cdn.origin import Origin
from repro.cdn.playback import PlaybackPolicy
from repro.cdn.session import SessionSpec, StreamingSession
from repro.core.config import WiraConfig
from repro.core.initializer import Scheme
from repro.core.transport_cookie import ClientCookieStore
from repro.media.source import StreamProfile
from repro.metrics.report import Table, format_ms, format_pct
from repro.metrics.stats import mean
from repro.quic.config import QuicConfig
from repro.simnet.path import NetworkConditions

TESTBED = NetworkConditions(bandwidth_bps=8e6, rtt=0.05, loss_rate=0.01, buffer_bytes=100_000)


def make_origin(seed=3):
    origin = Origin()
    origin.add_stream(
        "s",
        StreamProfile(first_frame_target_bytes=60_000, complexity_sigma=0.05,
                      size_jitter=0.05, seed=seed),
    )
    return origin


def run_pair(scheme, *, playback=None, epoch_gap=300.0, quic_config=None,
             wira_config=None, seed=0, conditions=TESTBED):
    """Warm-up session then a measured session with the cookie."""
    origin = make_origin()
    store = ClientCookieStore()
    warmup_spec = SessionSpec(
        conditions, scheme, seed=seed * 2 + 1, target_video_frames=20,
        quic_config=quic_config, wira_config=wira_config,
    )
    StreamingSession.from_spec(warmup_spec, origin, "s", cookie_store=store).run()
    measured_spec = warmup_spec.with_(
        seed=seed * 2 + 2, epoch=epoch_gap,
        playback=playback or PlaybackPolicy(), target_video_frames=4,
    )
    return StreamingSession.from_spec(measured_spec, origin, "s", cookie_store=store).run()


def test_bench_ablation_theta_vf(once):
    """Θ_VF sweep: richer playback conditions raise FF_Size and FFCT."""

    def sweep():
        rows = []
        for theta in (1, 2, 3, 5):
            results = [
                run_pair(Scheme.WIRA, playback=PlaybackPolicy(video_frames_required=theta), seed=s)
                for s in range(8)
            ]
            rows.append(
                (
                    theta,
                    mean([r.ffct for r in results if r.ffct]),
                    mean([r.ff_size_parsed for r in results if r.ff_size_parsed]),
                )
            )
        return rows

    rows = once(sweep)
    table = Table(
        "Ablation — playback condition Θ_VF (§VII)",
        ["Θ_VF", "FFCT", "parsed FF_Size"],
    )
    for theta, ffct, ff in rows:
        table.add_row(theta, format_ms(ffct), f"{ff / 1000:.1f}KB")
    table.print()

    ffcts = [ffct for _, ffct, _ in rows]
    sizes = [ff for _, _, ff in rows]
    assert ffcts == sorted(ffcts)  # more frames -> later first paint
    assert sizes == sorted(sizes)  # and a larger parsed first frame
    assert sizes[-1] > sizes[0] * 1.1  # the Θ_VF knob really reaches FP


def test_bench_ablation_cookie_staleness(once):
    """Δ sweep: fresh cookies help; stale ones fall back safely."""

    def sweep():
        rows = []
        for gap_minutes in (5, 30, 59, 120):
            results = [
                run_pair(Scheme.WIRA, epoch_gap=gap_minutes * 60.0, seed=s)
                for s in range(8)
            ]
            used = mean([1.0 if r.used_cookie else 0.0 for r in results])
            rows.append((gap_minutes, mean([r.ffct for r in results if r.ffct]), used))
        return rows

    rows = once(sweep)
    table = Table(
        "Ablation — cookie age vs Δ=60min (corner case 2)",
        ["gap", "FFCT", "cookie accepted"],
    )
    for gap, ffct, used in rows:
        table.add_row(f"{gap}min", format_ms(ffct), format_pct(used))
    table.print()

    by_gap = {gap: (ffct, used) for gap, ffct, used in rows}
    assert by_gap[5][1] == 1.0  # fresh cookies always accepted
    assert by_gap[120][1] == 0.0  # beyond Δ always rejected
    # Sessions still complete fine without the cookie (fallback works).
    assert by_gap[120][0] < 3 * by_gap[5][0]


def test_bench_ablation_congestion_controller(once):
    """The Wira hooks compose with a loss-based controller too."""

    def sweep():
        rows = []
        for cc in ("bbr", "cubic"):
            quic_config = QuicConfig(congestion_controller=cc)
            base = [
                run_pair(Scheme.BASELINE, quic_config=quic_config, seed=s).ffct
                for s in range(8)
            ]
            wira = [
                run_pair(Scheme.WIRA, quic_config=quic_config, seed=s).ffct
                for s in range(8)
            ]
            rows.append((cc, mean([b for b in base if b]), mean([w for w in wira if w])))
        return rows

    rows = once(sweep)
    table = Table(
        "Ablation — congestion-controller substrate",
        ["controller", "Baseline FFCT", "Wira FFCT", "gain"],
    )
    for cc, base, wira in rows:
        table.add_row(cc, format_ms(base), format_ms(wira), format_pct((base - wira) / base, signed=True))
    table.print()

    for cc, base, wira in rows:
        # Initialisation helps (or at least never badly hurts) under
        # either controller; the hooks are substrate-agnostic.
        assert wira < base * 1.10, cc

"""Table I — scheme-to-parameter mapping (executable documentation)."""

from repro.experiments import table1
from repro.metrics.report import Table


def test_bench_table1_parameter_configurations(once):
    rows = once(table1.run)
    table1.verify(rows)

    table = Table(
        "Table I — init_cwnd / init_pacing per scheme "
        "(FF=66KB, MaxBW=8Mbps, MinRTT=50ms)",
        ["scheme", "init_cwnd", "init_pacing", "cwnd (bytes)", "pacing (Mbps)"],
    )
    for row in rows:
        table.add_row(
            row.scheme.display_name,
            row.cwnd_formula,
            row.pacing_formula,
            row.cwnd_bytes,
            f"{row.pacing_bps / 1e6:.2f}",
        )
    table.print()

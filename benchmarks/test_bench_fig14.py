"""Fig 14 — first-frame loss rate (paper: avg 8.8% → 6.4%, a −27.3%
optimisation; p90 25.3% → 16.6%, −34.4%)."""

from repro.core.initializer import Scheme
from repro.experiments import fig14
from repro.metrics.report import Table, format_pct
from repro.quic.connection import HandshakeMode


def test_bench_fig14_first_frame_loss_rate(once, print_phase_table):
    result = once(fig14.run)
    print_phase_table("Fig 14")

    table = Table(
        "Fig 14 — FFLR (paper: baseline 8.8% avg / 25.3% p90; Wira 6.4% / 16.6%)",
        ["scheme", "avg FFLR", "p90 FFLR", "avg gain", "p90 gain"],
    )
    for scheme in (Scheme.BASELINE, Scheme.WIRA_FF, Scheme.WIRA_HX, Scheme.WIRA):
        s = result.overall[scheme]
        table.add_row(
            scheme.display_name,
            format_pct(s.avg),
            format_pct(s.p(90)),
            format_pct(result.improvement(scheme), signed=True),
            format_pct(result.improvement(scheme, 90), signed=True),
        )
    table.print()

    mode_table = Table(
        "Fig 14 (cont.) — Wira's FFLR optimisation by handshake mode "
        "(paper: 0-RTT -27.6% avg, 1-RTT -21.4% avg)",
        ["mode", "baseline avg", "Wira avg", "gain"],
    )
    for mode in HandshakeMode:
        base = result.by_mode[(mode, Scheme.BASELINE)]
        ours = result.by_mode[(mode, Scheme.WIRA)]
        mode_table.add_row(
            mode.value,
            format_pct(base.avg),
            format_pct(ours.avg),
            format_pct(result.improvement(Scheme.WIRA, mode=mode), signed=True),
        )
    mode_table.print()

    # Shape: Wira reduces average first-frame loss (paper −27.3%; the
    # reproduction's random-loss floor is scheme-independent, so the
    # congestion-loss component it can save is smaller) and the tail
    # does not get worse.  The cookie-informed variants lose less than
    # the FF-only variant, whose bursts overshoot on shallow buffers.
    assert result.improvement(Scheme.WIRA) > 0.02
    assert result.improvement(Scheme.WIRA, 90) > -0.05
    assert result.overall[Scheme.WIRA_HX].avg <= result.overall[Scheme.BASELINE].avg
    assert result.overall[Scheme.WIRA].avg < result.overall[Scheme.WIRA_FF].avg

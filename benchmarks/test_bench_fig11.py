"""Fig 11 — overall FFCT benefits (paper: Wira −10.6% avg, −18.7% p70,
−16.7% p90; Wira(FF) −6.0%, Wira(Hx) −7.4% avg)."""

from repro.core.initializer import Scheme
from repro.experiments import fig11
from repro.experiments.fig11 import PERCENTILES
from repro.metrics.report import Table, format_ms, format_pct


def test_bench_fig11_overall_ffct(once, print_phase_table):
    result = once(fig11.run)
    print_phase_table("Fig 11")

    table = Table(
        "Fig 11 — FFCT of all live streams (paper baseline 158.9ms avg / 409.6ms p90)",
        ["scheme", "n", "avg", "avg gain", "p50", "p70", "p70 gain", "p90", "p90 gain"],
    )
    for scheme in (Scheme.BASELINE, Scheme.WIRA_FF, Scheme.WIRA_HX, Scheme.WIRA):
        s = result.by_scheme[scheme]
        table.add_row(
            scheme.display_name,
            len(s.samples),
            format_ms(s.avg),
            format_pct(result.improvement(scheme), signed=True),
            format_ms(s.p(50)),
            format_ms(s.p(70)),
            format_pct(result.improvement(scheme, 70), signed=True),
            format_ms(s.p(90)),
            format_pct(result.improvement(scheme, 90), signed=True),
        )
    table.print()

    # Shape: every Wira variant beats the baseline on average, and the
    # full mechanism is at least as good as either single-signal variant.
    assert result.improvement(Scheme.WIRA) > 0.02
    assert result.improvement(Scheme.WIRA_FF) > 0.0
    assert result.improvement(Scheme.WIRA_HX) > 0.0
    assert result.improvement(Scheme.WIRA) >= result.improvement(Scheme.WIRA_FF) - 0.01
    # Tail percentiles improve too (paper: −16.7% at p90).
    assert result.improvement(Scheme.WIRA, 90) > 0.0
    assert result.improvement(Scheme.WIRA, 70) > 0.0

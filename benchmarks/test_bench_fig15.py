"""Fig 15 — follow-up frame transmissions (paper: stable 10.9-13.0%
completion-time gains through frames 2-4; follow-up loss rate improves
from 9.0-9.2% to 6.7-7.1% — no congestion side effects)."""

from repro.core.initializer import Scheme
from repro.experiments import fig15
from repro.experiments.fig15 import FRAMES
from repro.metrics.report import Table, format_ms, format_pct


def test_bench_fig15_follow_up_frames(once, print_phase_table):
    result = once(fig15.run)
    print_phase_table("Fig 15")

    table = Table(
        "Fig 15 — completion time of video frames 1-4 (since request)",
        ["frame", "Baseline", "Wira", "gain", "Baseline loss", "Wira loss"],
    )
    for k in FRAMES:
        table.add_row(
            f"#{k}",
            format_ms(result.mean_completion(Scheme.BASELINE, k)),
            format_ms(result.mean_completion(Scheme.WIRA, k)),
            format_pct(result.improvement(Scheme.WIRA, k), signed=True),
            format_pct(result.mean_loss(Scheme.BASELINE, k)),
            format_pct(result.mean_loss(Scheme.WIRA, k)),
        )
    table.print()

    # Completion times are monotone in frame index for both schemes.
    for scheme in (Scheme.BASELINE, Scheme.WIRA):
        times = [result.mean_completion(scheme, k) for k in FRAMES]
        assert all(t is not None for t in times)
        assert times == sorted(times)

    # Wira's first-frame gain does not degrade follow-up frames: every
    # frame 2-4 is at least as fast as baseline's, within noise.
    for k in (2, 3, 4):
        gain = result.improvement(Scheme.WIRA, k)
        assert gain is not None and gain > -0.03

    # And follow-up loss does not get worse (paper: it improves).
    for k in (2, 3, 4):
        base_loss = result.mean_loss(Scheme.BASELINE, k)
        wira_loss = result.mean_loss(Scheme.WIRA, k)
        assert wira_loss <= base_loss + 0.01

"""Speed benchmarks: kernel throughput and replay-engine wall clock.

Unlike the figure benchmarks, these measure the *machinery*, not the
paper's numbers.  Results accumulate into ``BENCH_speed.json`` at the
repository root so CI can archive them run-over-run (schema v2; see
``deployment_replay`` below for the per-axis speedup breakdown).

Knobs (for CI smoke runs on small machines):

``WIRA_BENCH_OD_PAIRS``
    Deployment size for the replay timing (default 120 — the headline
    configuration).
``WIRA_BENCH_JOBS``
    Worker count for the parallel leg (default 4).

The parallel-vs-serial speedup assertion only applies when the machine
actually has at least as many cores as workers; on smaller hosts the
timings are still recorded (with ``cores`` alongside, so a reader — or
the ``wira-perf`` ratchet — can tell an engine regression from a small
host).
"""

import json
import os
import time
from pathlib import Path

from repro import obs, sanitize
from repro.experiments import common, runner
from repro.runtime import settings
from repro.simnet.batch import BatchEventLoop
from repro.simnet.engine import EventLoop
from repro.workload.population import DeploymentConfig

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_speed.json"

SCHEMA_VERSION = 2


def _record(section, payload):
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except ValueError:
            data = {}
    data["schema_version"] = SCHEMA_VERSION
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _bench_od_pairs():
    return int(os.environ.get("WIRA_BENCH_OD_PAIRS", "120"))


def _bench_jobs():
    return int(os.environ.get("WIRA_BENCH_JOBS", "4"))


class TestEventLoopThroughput:
    N_EVENTS = 200_000

    def _drive(self, n):
        """A mixed workload: fire-and-forget chains (the per-packet
        pattern), plus cancellable timers that mostly get cancelled (the
        retransmission-timer pattern)."""
        loop = EventLoop()
        remaining = [n]
        timer = [None]

        def tick():
            if remaining[0] <= 0:
                return
            remaining[0] -= 1
            loop.post_later(0.001, tick)
            if remaining[0] % 8 == 0:
                if timer[0] is not None:
                    timer[0].cancel()
                timer[0] = loop.call_later(5.0, lambda: None)

        for i in range(32):
            loop.post_later(0.001 * (i + 1), tick)
        start = time.perf_counter()
        loop.run()
        elapsed = time.perf_counter() - start
        return loop.processed_events / elapsed

    def test_throughput(self, capsys):
        # Warm-up pass stabilises allocator/caches, then measure.
        self._drive(20_000)
        best = max(self._drive(self.N_EVENTS) for _ in range(3))
        _record(
            "event_loop",
            {
                "events": self.N_EVENTS,
                "events_per_second": round(best),
            },
        )
        with capsys.disabled():
            print(f"\nEventLoop throughput: {best:,.0f} events/s")
        # Loose sanity floor — the optimised loop clears ~800k ev/s on a
        # single 2020s core; trip only on order-of-magnitude regressions.
        assert best > 150_000


class TestBatchedKernelThroughput:
    """Aggregate throughput of the batched multi-session kernel.

    Many member loops share one :class:`BatchEventLoop`; each member
    runs the solo bench's mixed workload (fire-and-forget tick chains,
    mostly-cancelled timers) *plus* ``post_burst`` trains of
    back-to-back events — the shape aggregate drivers hand to the
    kernel's burst lane.  The reported number is aggregate
    events/second across all members, the figure the perf ratchet
    tracks for the batched kernel.
    """

    SESSIONS = 32
    BURST = 256
    TOTAL_EVENTS = 1_500_000

    def _drive(self, total_events):
        kernel = BatchEventLoop()
        quota = total_events // self.SESSIONS
        burst = self.BURST
        payloads = list(range(burst))
        sink = []

        def arm(member, phase):
            state = [quota, None]  # [events left, live timer]

            def on_item(item):
                pass

            def tick():
                if state[0] <= 0:
                    return
                state[0] -= burst + 2
                now = member.now
                # A link train: back-to-back serialisations are micro-
                # second-scale, far tighter than the millisecond tick
                # cadence, so a train drains contiguously the way a real
                # fast-link burst does between protocol timers.
                times = [now + 1e-8 * (i + 1) for i in range(burst)]
                member.post_burst(times, on_item, payloads)
                member.post_later(0.001, tick)
                if state[1] is not None:
                    state[1].cancel()
                state[1] = member.call_later(5.0, lambda: None)

            member.post_later(0.001 + phase, tick)
            sink.append(state)

        for index in range(self.SESSIONS):
            arm(kernel.member(), index * 0.001 / self.SESSIONS)
        start = time.perf_counter()
        kernel.run()
        elapsed = time.perf_counter() - start
        return kernel.processed_events / elapsed, kernel.processed_events

    def test_aggregate_throughput(self, capsys):
        self._drive(60_000)  # warm-up
        runs = [self._drive(self.TOTAL_EVENTS) for _ in range(3)]
        best = max(r[0] for r in runs)
        events = runs[0][1]
        _record(
            "batched_kernel",
            {
                "sessions": self.SESSIONS,
                "burst_size": self.BURST,
                "events": events,
                "events_per_second": round(best),
            },
        )
        with capsys.disabled():
            print(
                f"\nBatched kernel: {best:,.0f} events/s aggregate "
                f"({self.SESSIONS} sessions, burst {self.BURST})"
            )
        # The burst lane clears several million events/s on a single
        # 2020s core; trip only on order-of-magnitude regressions (the
        # wira-perf ratchet guards the fine-grained number).
        assert best > 500_000


class TestSanitizerOverhead:
    """Runtime-sanitizer cost on the event-loop hot path.

    The acceptance budget: <= 10% throughput loss with ``WIRA_SANITIZE=1``
    (the checked loop runs one inlined comparison per event), and ~0%
    when disabled (the hook is a single module-global test before the
    loop starts, never inside it).
    """

    N_EVENTS = 200_000
    BUDGET = 0.10

    def test_enabled_overhead_within_budget(self, capsys):
        bench = TestEventLoopThroughput()
        sanitize.disable()
        bench._drive(20_000)  # warm-up
        disabled = max(bench._drive(self.N_EVENTS) for _ in range(3))
        with sanitize.sanitized() as san:
            bench._drive(20_000)
            enabled = max(bench._drive(self.N_EVENTS) for _ in range(3))
        assert san.checks_run["clock_monotonic"] > self.N_EVENTS  # genuinely on

        overhead = (disabled - enabled) / disabled
        _record(
            "sanitizer_overhead",
            {
                "events": self.N_EVENTS,
                "disabled_events_per_second": round(disabled),
                "enabled_events_per_second": round(enabled),
                "overhead_fraction": round(overhead, 4),
            },
        )
        with capsys.disabled():
            print(
                f"\nSanitizer overhead: disabled {disabled:,.0f} ev/s, "
                f"enabled {enabled:,.0f} ev/s ({overhead:+.1%})"
            )
        # Double the budget as the assertion ceiling: best-of-3 absorbs
        # most scheduler noise, but shared CI runners still jitter a few
        # percent either way.
        assert overhead <= 2 * self.BUDGET, (
            f"sanitizer costs {overhead:.1%} event-loop throughput "
            f"(budget {self.BUDGET:.0%})"
        )


class TestTraceOverhead:
    """Trace-bus cost with tracing *disabled* — the default everyone pays.

    The acceptance budget: < 2% throughput loss on the event-loop bench
    when no bus is installed.  By design the EventLoop hot loop carries
    no trace hooks at all (hook sites live on the per-packet transport
    paths and test one module global), so this is a regression tripwire:
    it fails if instrumentation ever creeps into the loop itself.
    A traced-vs-untraced session comparison is recorded alongside for
    the enabled-path picture, without a hard assertion (enabling tracing
    is an explicit opt-in).
    """

    N_EVENTS = 200_000
    BUDGET = 0.02

    def test_disabled_overhead_within_budget(self, capsys):
        bench = TestEventLoopThroughput()
        obs.disable()
        bench._drive(20_000)  # warm-up
        baseline = max(bench._drive(self.N_EVENTS) for _ in range(3))
        # Interleave a second disabled measurement to separate "cost of
        # the disabled hooks" from run-to-run noise.
        check = max(bench._drive(self.N_EVENTS) for _ in range(3))
        overhead = (baseline - check) / baseline

        def _session():
            return common.run_testbed_session(
                common.manual_params(66_000, 8_000_000.0)
            )

        start = time.perf_counter()
        _session()
        untraced_s = time.perf_counter() - start
        with obs.tracing() as bus:
            start = time.perf_counter()
            _session()
            traced_s = time.perf_counter() - start
        assert bus.counts.get("session:first_frame") == 1  # genuinely on

        _record(
            "trace_overhead",
            {
                "events": self.N_EVENTS,
                "disabled_events_per_second": round(check),
                "overhead_fraction": round(overhead, 4),
                "session_untraced_seconds": round(untraced_s, 4),
                "session_traced_seconds": round(traced_s, 4),
            },
        )
        with capsys.disabled():
            print(
                f"\nTrace overhead (disabled): {overhead:+.2%} on the event loop; "
                f"session untraced {untraced_s*1000:.1f}ms, "
                f"traced {traced_s*1000:.1f}ms"
            )
        # Double the budget as the assertion ceiling, as for the
        # sanitizer: best-of-3 absorbs most noise, CI runners jitter.
        assert overhead <= 2 * self.BUDGET, (
            f"disabled tracing costs {overhead:.1%} event-loop throughput "
            f"(budget {self.BUDGET:.0%})"
        )


class TestReplayWallClock:
    def test_serial_vs_parallel_headline(self, capsys):
        """Three legs, two speedup axes (schema v2).

        * ``v1_serial`` — the previous engine: solo event loop per
          session, legacy two-event link path (both kernel knobs off).
        * ``serial`` — the batched kernel + fast link, one process.
        * ``parallel`` — the same, sharded over ``jobs`` workers with
          chunk-of-chains tasks.

        ``kernel_speedup`` isolates the kernel rewrite (v1 vs v2, both
        serial); ``sharding_speedup`` isolates the chunked pool (serial
        vs parallel, same code); ``speedup`` is their product — what a
        user upgrading from the old engine at ``jobs`` workers sees.
        """
        od_pairs = _bench_od_pairs()
        jobs = _bench_jobs()
        config = DeploymentConfig(
            n_od_pairs=od_pairs, seed=common.HEADLINE_CONFIG.seed
        )

        with settings.overridden(batch=False, fast_link=False):
            start = time.perf_counter()
            v1 = runner.run_deployment(
                config, common.EVAL_SCHEMES, use_cache=False, jobs=1
            )
            v1_serial_s = time.perf_counter() - start

        start = time.perf_counter()
        serial = runner.run_deployment(
            config, common.EVAL_SCHEMES, use_cache=False, jobs=1
        )
        serial_s = time.perf_counter() - start

        start = time.perf_counter()
        parallel = runner.run_deployment(
            config, common.EVAL_SCHEMES, use_cache=False, jobs=jobs
        )
        parallel_s = time.perf_counter() - start

        sessions = sum(len(v) for v in serial.values())
        kernel_speedup = v1_serial_s / serial_s if serial_s > 0 else float("inf")
        sharding_speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
        speedup = v1_serial_s / parallel_s if parallel_s > 0 else float("inf")
        cores = os.cpu_count() or 1
        _record(
            "deployment_replay",
            {
                "od_pairs": od_pairs,
                "sessions_replayed": sessions,
                "jobs": jobs,
                "cores": cores,
                "v1_serial_seconds": round(v1_serial_s, 3),
                "serial_seconds": round(serial_s, 3),
                "parallel_seconds": round(parallel_s, 3),
                "kernel_speedup": round(kernel_speedup, 3),
                "sharding_speedup": round(sharding_speedup, 3),
                "speedup": round(speedup, 3),
                "sessions_per_second": round(sessions / parallel_s, 3),
            },
        )
        with capsys.disabled():
            print(
                f"\nReplay ({od_pairs} OD pairs, {sessions} sessions): "
                f"v1 serial {v1_serial_s:.1f}s, v2 serial {serial_s:.1f}s "
                f"(kernel {kernel_speedup:.2f}x), parallel x{jobs} "
                f"{parallel_s:.1f}s -> {speedup:.2f}x total on {cores} core(s)"
            )

        # Identity first: speed means nothing if the records diverge.
        # All three legs — old engine, new kernel, new kernel sharded —
        # must produce byte-identical outcome sequences.
        for scheme in serial:
            assert [o.result for o in v1[scheme]] == [
                o.result for o in serial[scheme]
            ]
            assert [o.result for o in serial[scheme]] == [
                o.result for o in parallel[scheme]
            ]
        # The shared-scheduler kernel pays a small single-process tax
        # (the calendar queue and member bookkeeping run in Python,
        # where the solo loop leans on C heapq) in exchange for the
        # chunk-sharded parallel path and the aggregate burst-lane
        # throughput.  Clean measurements put the tax at 5-13%, but a
        # single-shot quotient of two ~minute legs swings ±10% on a
        # busy box, so trip only past ~20% — enough to catch structural
        # regressions (an uncapped 120-member wave measured 0.72) while
        # the ratchet tracks the fine number run-over-run.
        assert kernel_speedup > 0.80, (
            f"batched kernel is {1/kernel_speedup:.2f}x slower than the "
            f"solo loop it replaced"
        )
        # Speedup floors only bind when the host can physically deliver
        # them: ≥1.8x total at 2 workers, ≥2.5x at 4.
        if cores >= jobs >= 2:
            floor = 2.5 if jobs >= 4 else 1.8
            assert speedup >= floor, (
                f"replay only {speedup:.2f}x faster than the v1 engine with "
                f"{jobs} workers on {cores} cores (needed {floor}x)"
            )

    def test_disk_cache_hit_is_fast(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("WIRA_CACHE_DIR", str(tmp_path))
        runner.clear_caches()
        config = DeploymentConfig(n_od_pairs=6, seed=77)

        start = time.perf_counter()
        first = runner.run_deployment(config, common.EVAL_SCHEMES)
        compute_s = time.perf_counter() - start

        runner.clear_caches()
        start = time.perf_counter()
        again = runner.run_deployment(config, common.EVAL_SCHEMES)
        hit_s = time.perf_counter() - start

        _record(
            "disk_cache",
            {
                "compute_seconds": round(compute_s, 3),
                "hit_seconds": round(hit_s, 4),
            },
        )
        with capsys.disabled():
            print(f"\nDisk cache: compute {compute_s:.2f}s, hit {hit_s*1000:.1f}ms")
        for scheme in first:
            assert first[scheme] == again[scheme]
        assert hit_s < compute_s / 5
